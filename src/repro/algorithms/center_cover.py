"""Theorem 4.2: the strongly polynomial center/ball algorithm.

Instead of all ``O(|V|^{2k-1})`` small subsets, Phase 1 greedily covers
``V`` using only *balls*

    S_{c,r} = { v in V : d(c, v) <= r }

with centers ``c in V``.  The paper offers two parameterizations — radii
``i in {1..m}`` (``m |V|`` sets) or radii ``d(c, c')`` for ``c' in V``
(``|V|^2`` sets) — and advises using whichever is smaller.  As *set
families* the two coincide: ball membership only changes at radii that
are realized distances, so this module enumerates one candidate per
(center, realized radius) pair with at least ``k`` members.

Lemma 4.2 bounds ``d(S_{c,r}) <= 2r``, and Lemma 4.3 shows restricting to
balls costs at most a factor 2 in diameter sum; greedy then yields a
``6k(1 + ln m)``-approximation overall, in strongly polynomial time.

The greedy loop uses lazy evaluation (a priority queue of stale ratios,
re-evaluated on pop), exploiting that ``r(S) = d(S)/|S \\ D|`` only grows
as coverage ``D`` grows — the practical speedup the paper anticipates
("we are confident that this time bound can be significantly improved
using appropriate data structures").  Candidate balls come from the
backend's radius-bucketed neighbor index
(:meth:`~repro.core.backend.DistanceBackend.neighbor_order`): one lazy
distance row per center, bucketed once, so enumeration never rescans
all ``|V|`` rows per (center, radius) pair and the full ``n x n``
nested-list matrix is never materialized.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.algorithms.reduce_cover import reduce_and_shrink
from repro.core.backend import get_backend
from repro.core.partition import Cover
from repro.core.table import Table
from repro.registry import register
from repro.theory import theorem_4_2_bound


def build_ball_cover(
    table: Table,
    k: int,
    diameter_mode: str = "radius_bound",
    backend=None,
) -> Cover:
    """Greedy set cover over center/radius balls (Phase 1 of Theorem 4.2).

    :param diameter_mode: how a candidate ball's diameter enters the
        greedy ratio: ``"radius_bound"`` uses Lemma 4.2's ``min(2r, m)``
        surrogate (strongly polynomial, the paper's accounting);
        ``"exact"`` computes true diameters (slower, sometimes better
        covers).
    :param backend: distance-backend selector (see
        :func:`repro.core.backend.get_backend`).
    :returns: a (k, n)-cover of the table by balls.
    :raises ValueError: on ``0 < n < k`` or an unknown mode.
    """
    if diameter_mode not in ("radius_bound", "exact"):
        raise ValueError(f"unknown diameter_mode {diameter_mode!r}")
    n = table.n_rows
    m = table.degree
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return Cover([], 0, k)
    if n < k:
        raise ValueError(f"{n} rows cannot be covered by sets of size >= {k}")

    metric = get_backend(table, backend)

    # Per center: the backend's radius-bucketed neighbor index (rows
    # ordered by (distance, index), built from one lazy distance row per
    # center — the full n x n matrix is never materialized); candidates
    # are the prefixes ending at a distance boundary with at least k
    # members, i.e. exactly the balls S_{c, r} over realized radii r.
    orders: list[tuple[int, ...]] = []
    heap: list[tuple[Fraction, int, int, int, int]] = []
    for c in range(n):
        order, dists = metric.neighbor_order(c)
        orders.append(order)
        for p in range(k, n + 1):
            is_boundary = p == n or dists[p] > dists[p - 1]
            if not is_boundary:
                continue
            radius = dists[p - 1]
            d_est = min(2 * radius, m)
            # heap entry: (ratio, diameter estimate, center, prefix, stale new-count)
            heapq.heappush(heap, (Fraction(d_est, p), d_est, c, p, p))

    exact_diams: dict[tuple[int, int], int] = {}

    def ball_diameter(c: int, p: int) -> int:
        cached = exact_diams.get((c, p))
        if cached is not None:
            return cached
        members = orders[c][:p]
        best = 0
        for a in range(p):
            row = metric.distance_row(members[a])
            for b in range(a + 1, p):
                d = row[members[b]]
                if d > best:
                    best = d
        exact_diams[(c, p)] = best
        return best

    uncovered = [True] * n
    remaining = n
    chosen: list[frozenset[int]] = []
    evaluations = 0
    while remaining:
        ratio, d_est, c, p, stale_new = heapq.heappop(heap)
        evaluations += 1
        newly = sum(1 for v in orders[c][:p] if uncovered[v])
        if newly == 0:
            continue
        if diameter_mode == "exact":
            d_est = ball_diameter(c, p)
        current = Fraction(d_est, newly)
        if heap and (current, d_est, c, p) > heap[0][:4]:
            heapq.heappush(heap, (current, d_est, c, p, newly))
            continue
        members = frozenset(orders[c][:p])
        chosen.append(members)
        for v in orders[c][:p]:
            uncovered[v] = False
        remaining -= newly
    k_max = max([2 * k - 1] + [len(g) for g in chosen])
    return Cover(chosen, n, k, k_max=k_max)


@register(
    "center_cover",
    kind="approx",
    bound=theorem_4_2_bound,
    bound_label="6k(1+ln m) — Theorem 4.2",
    aliases=("center",),
    summary="greedy ball cover + Reduce; strongly polynomial workhorse",
)
class CenterCoverAnonymizer(Anonymizer):
    """The full Theorem 4.2 pipeline: ball Cover -> Reduce -> suppress.

    Strongly polynomial; the workhorse algorithm for non-toy tables.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 3)
    >>> result = CenterCoverAnonymizer().anonymize(t, 3)
    >>> result.is_valid(t)
    True
    """

    name = "center_cover"

    def __init__(self, diameter_mode: str = "radius_bound", backend=None,
                 budget=None, trace=None):
        super().__init__(backend=backend, budget=budget, trace=trace)
        if diameter_mode not in ("radius_bound", "exact"):
            raise ValueError(f"unknown diameter_mode {diameter_mode!r}")
        self._diameter_mode = diameter_mode

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        resolved = run.backend
        with run.phase("cover"):
            cover = build_ball_cover(
                table, k, diameter_mode=self._diameter_mode, backend=resolved
            )
        with run.phase("reduce"):
            partition = reduce_and_shrink(table, cover, backend=resolved)
        run.count("cover_sets", len(cover))
        extras = {
            "cover_sets": len(cover),
            "cover_diameter_sum": cover.diameter_sum(table, backend=resolved),
            "partition_diameter_sum": partition.diameter_sum(table, backend=resolved),
            "diameter_mode": self._diameter_mode,
        }
        return self._result_from_partition(table, k, partition, extras, run=run)
