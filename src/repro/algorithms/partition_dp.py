"""A reusable exact partition-DP engine.

Several exact solvers share one skeleton: partition ``n`` items into
groups of size ``[k, 2k-1]`` minimizing an *additive* group cost (the
WLOG size cap is sound whenever splitting a group never increases its
cost, which holds for every cost in this repository: star counts,
weighted stars, and hierarchy recoding loss all shrink when a group
shrinks).  This module implements the skeleton once — memoized DP over
bitmask states with canonical lowest-set-bit seeding, plus optimal
partition reconstruction — and the concrete solvers inject their group
cost:

* `repro.algorithms.exact.optimal_anonymization` — ``|S| * |D(S)|``;
* `repro.core.weights.optimal_weighted_anonymization` — weighted stars;
* `repro.generalization.optimal_recoding` — LCA recoding loss.

Exponential in n (the problem is NP-hard); intended for n <= ~16.
"""

from __future__ import annotations

from collections.abc import Callable
from itertools import combinations

GroupCost = Callable[[tuple[int, ...]], float]

_INF = float("inf")


def minimum_cost_partition(
    n: int,
    k: int,
    group_cost: GroupCost,
    group_max: int | None = None,
    budget=None,
) -> tuple[float, list[frozenset[int]]]:
    """Exact minimum additive-cost partition into groups of [k, group_max].

    :param n: number of items (indices ``0..n-1``).
    :param k: minimum group size.
    :param group_cost: cost of one group, given its sorted member tuple.
        Must be non-negative; called at most once per distinct group.
    :param group_max: maximum group size (default ``2k - 1``).
    :param budget: optional wall-clock allowance (seconds or a
        :class:`~repro.instrument.TimeBudget`), checked once per fresh DP
        state.  An exact DP holds no feasible incumbent mid-flight, so
        expiry raises :class:`~repro.instrument.BudgetExceededError`
        rather than degrading.
    :returns: ``(optimal_cost, groups)``.
    :raises ValueError: if ``0 < n < k`` or ``k < 1``.
    :raises repro.instrument.BudgetExceededError: if *budget* expires
        before the optimum is proven.
    """
    from repro.instrument import as_budget

    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0.0, []
    if n < k:
        raise ValueError(f"{n} items cannot form groups of size >= {k}")
    upper = min((2 * k - 1) if group_max is None else group_max, n)
    if upper < k:
        raise ValueError("group_max must be at least k")
    budget = as_budget(budget).start()

    cost_cache: dict[tuple[int, ...], float] = {}

    def cached_cost(members: tuple[int, ...]) -> float:
        value = cost_cache.get(members)
        if value is None:
            value = group_cost(members)
            cost_cache[members] = value
        return value

    memo: dict[int, float] = {}

    def solve(mask: int) -> float:
        if mask == 0:
            return 0.0
        cached = memo.get(mask)
        if cached is not None:
            return cached
        budget.check("minimum_cost_partition")
        remaining = mask.bit_count()
        if remaining < k:
            memo[mask] = _INF
            return _INF
        lowest = (mask & -mask).bit_length() - 1
        others = [i for i in range(lowest + 1, n) if mask >> i & 1]
        best = _INF
        for size in range(k, min(upper, remaining) + 1):
            if 0 < remaining - size < k:
                continue
            for mates in combinations(others, size - 1):
                members = (lowest, *mates)
                group_mask = 0
                for i in members:
                    group_mask |= 1 << i
                candidate = cached_cost(members) + solve(mask ^ group_mask)
                if candidate < best:
                    best = candidate
        memo[mask] = best
        return best

    full = (1 << n) - 1
    optimal = solve(full)
    assert optimal != _INF, "n >= k always admits a partition"

    # Reconstruct by replaying optimal choices (tolerant to float noise).
    groups: list[frozenset[int]] = []
    mask = full
    while mask:
        remaining = mask.bit_count()
        lowest = (mask & -mask).bit_length() - 1
        others = [i for i in range(lowest + 1, n) if mask >> i & 1]
        found = False
        for size in range(k, min(upper, remaining) + 1):
            if 0 < remaining - size < k:
                continue
            for mates in combinations(others, size - 1):
                members = (lowest, *mates)
                group_mask = 0
                for i in members:
                    group_mask |= 1 << i
                total = cached_cost(members) + solve(mask ^ group_mask)
                if abs(total - solve(mask)) < 1e-9:
                    groups.append(frozenset(members))
                    mask ^= group_mask
                    found = True
                    break
            if found:
                break
        assert found, "reconstruction must follow an optimal branch"
    return optimal, groups
