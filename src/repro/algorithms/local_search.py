"""Local-search post-optimization of partition-based anonymizations.

The paper's algorithms build a (k, 2k-1)-partition once and stop; in
practice a cheap hill-climbing pass over the partition recovers much of
the remaining gap to optimal.  Two moves, applied until a local optimum
(or a move budget) is reached:

* **relocate** — move one row from a group with more than ``k`` members
  into another group, if the total ANON cost drops;
* **swap** — exchange two rows between two groups, if the total cost
  drops (legal at any group sizes).

Both moves preserve the (k, *)-partition invariants, so the result is
always a valid k-anonymization with cost no worse than the input's —
the improvement is certified, not heuristic.  This addresses the
paper's closing remark that the bounds "can be significantly improved
using appropriate data structures" on the practical side.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.distance import disagreeing_coordinates
from repro.core.partition import Partition
from repro.core.table import Table


def _group_cost(rows, members) -> int:
    vectors = [rows[i] for i in members]
    return len(vectors) * len(disagreeing_coordinates(vectors))


def improve_partition(
    table: Table,
    partition: Partition,
    max_rounds: int = 50,
) -> tuple[Partition, int]:
    """Hill-climb a partition with relocate and swap moves.

    :returns: ``(improved_partition, rounds_used)``; the improved
        partition's ANON cost is <= the input's.
    """
    rows = table.rows
    k = partition.k
    groups: list[set[int]] = [set(g) for g in partition.groups]
    costs = [_group_cost(rows, g) for g in groups]

    def try_relocate() -> bool:
        for src in range(len(groups)):
            if len(groups[src]) <= k:
                continue
            for v in sorted(groups[src]):
                without = groups[src] - {v}
                cost_without = _group_cost(rows, without)
                for dst in range(len(groups)):
                    if dst == src:
                        continue
                    if len(groups[dst]) >= 2 * k - 1:
                        continue
                    cost_with = _group_cost(rows, groups[dst] | {v})
                    delta = (
                        cost_without + cost_with - costs[src] - costs[dst]
                    )
                    if delta < 0:
                        groups[src].remove(v)
                        groups[dst].add(v)
                        costs[src] = cost_without
                        costs[dst] = cost_with
                        return True
        return False

    def try_swap() -> bool:
        for a in range(len(groups)):
            for b in range(a + 1, len(groups)):
                for u in sorted(groups[a]):
                    for v in sorted(groups[b]):
                        new_a = (groups[a] - {u}) | {v}
                        new_b = (groups[b] - {v}) | {u}
                        cost_a = _group_cost(rows, new_a)
                        cost_b = _group_cost(rows, new_b)
                        if cost_a + cost_b < costs[a] + costs[b]:
                            groups[a], groups[b] = new_a, new_b
                            costs[a], costs[b] = cost_a, cost_b
                            return True
        return False

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        if not (try_relocate() or try_swap()):
            break
    k_max = max([partition.k_max] + [len(g) for g in groups])
    return (
        Partition([frozenset(g) for g in groups], partition.n_rows, k,
                  k_max=k_max),
        rounds,
    )


class LocalSearchAnonymizer(Anonymizer):
    """Wrap any partition-based anonymizer with a hill-climbing pass.

    >>> from repro.algorithms import CenterCoverAnonymizer
    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (1, 0), (1, 1), (5, 5), (5, 5)])
    >>> base = CenterCoverAnonymizer()
    >>> polished = LocalSearchAnonymizer(base)
    >>> polished.anonymize(t, 2).stars <= base.anonymize(t, 2).stars
    True
    """

    def __init__(self, inner: Anonymizer | None = None, max_rounds: int = 50):
        from repro.algorithms.center_cover import CenterCoverAnonymizer

        self._inner = inner if inner is not None else CenterCoverAnonymizer()
        self._max_rounds = max_rounds
        self.name = f"{self._inner.name}+local"

    def anonymize(self, table: Table, k: int) -> AnonymizationResult:
        self._check_feasible(table, k)
        base = self._inner.anonymize(table, k)
        if base.partition is None or table.n_rows == 0:
            return base
        improved, rounds = improve_partition(
            table, base.partition, max_rounds=self._max_rounds
        )
        result = self._result_from_partition(
            table, k, improved,
            {"base_stars": base.stars, "rounds": rounds,
             "base_algorithm": self._inner.name},
        )
        assert result.stars <= base.stars
        return result
