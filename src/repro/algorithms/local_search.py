"""Local-search post-optimization of partition-based anonymizations.

The paper's algorithms build a (k, 2k-1)-partition once and stop; in
practice a cheap hill-climbing pass over the partition recovers much of
the remaining gap to optimal.  Two moves, applied until a local optimum
(or a move budget) is reached:

* **relocate** — move one row from a group with more than ``k`` members
  into another group, if the total ANON cost drops;
* **swap** — exchange two rows between two groups, if the total cost
  drops (legal at any group sizes).

Both moves preserve the (k, *)-partition invariants, so the result is
always a valid k-anonymization with cost no worse than the input's —
the improvement is certified, not heuristic.  This addresses the
paper's closing remark that the bounds "can be significantly improved
using appropriate data structures" on the practical side.

Move evaluation runs entirely on the backend's incremental
:class:`~repro.core.backend.MutableGroupStats`: each candidate move is
scored by O(m) what-if queries (``cost_if_add`` / ``cost_if_remove`` /
``cost_if_swap``) instead of recomputing whole groups — the
"appropriate data structures" the paper anticipates.  The test suite
asserts via the backend's operation counters that no full group
recomputation happens during the search.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.backend import get_backend
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


def improve_partition(
    table: Table,
    partition: Partition,
    max_rounds: int = 50,
    backend=None,
    budget=None,
    run=None,
) -> tuple[Partition, int]:
    """Hill-climb a partition with relocate and swap moves.

    :param budget: optional wall-clock allowance (seconds or a
        :class:`~repro.instrument.TimeBudget`); checked once per
        candidate scan, so expiry stops the search between moves and the
        partition returned is always valid, with cost <= the input's.
    :param run: optional :class:`~repro.instrument.Run` used to report
        rounds/moves counters and a deadline hit; when given and
        ``budget`` is None, the run's own budget applies.
    :returns: ``(improved_partition, rounds_used)``; the improved
        partition's ANON cost is <= the input's.
    """
    from repro.instrument import as_budget

    resolved = get_backend(table, backend)
    if budget is None and run is not None:
        budget = run.budget
    budget = as_budget(budget).start()
    k = partition.k
    stats = [resolved.group_stats(g) for g in partition.groups]
    out_of_time = False

    def try_relocate() -> bool:
        nonlocal out_of_time
        for src in range(len(stats)):
            if len(stats[src]) <= k:
                continue
            for v in sorted(stats[src].members):
                if budget.expired():
                    out_of_time = True
                    return False
                cost_without = stats[src].cost_if_remove(v)
                for dst in range(len(stats)):
                    if dst == src:
                        continue
                    if len(stats[dst]) >= 2 * k - 1:
                        continue
                    cost_with = stats[dst].cost_if_add(v)
                    delta = (
                        cost_without + cost_with
                        - stats[src].cost - stats[dst].cost
                    )
                    if delta < 0:
                        stats[src].remove(v)
                        stats[dst].add(v)
                        return True
        return False

    def try_swap() -> bool:
        nonlocal out_of_time
        for a in range(len(stats)):
            for b in range(a + 1, len(stats)):
                if budget.expired():
                    out_of_time = True
                    return False
                for u in sorted(stats[a].members):
                    for v in sorted(stats[b].members):
                        cost_a = stats[a].cost_if_swap(u, v)
                        cost_b = stats[b].cost_if_swap(v, u)
                        if cost_a + cost_b < stats[a].cost + stats[b].cost:
                            stats[a].remove(u)
                            stats[a].add(v)
                            stats[b].remove(v)
                            stats[b].add(u)
                            return True
        return False

    rounds = 0
    moves = 0
    while rounds < max_rounds and not out_of_time:
        rounds += 1
        if try_relocate() or (not out_of_time and try_swap()):
            moves += 1
        elif not out_of_time:
            break
    if run is not None:
        run.count("rounds", rounds)
        run.count("moves", moves)
        if out_of_time:
            run.mark_deadline_hit()
    k_max = max([partition.k_max] + [len(s) for s in stats])
    return (
        Partition([s.members for s in stats], partition.n_rows, k,
                  k_max=k_max),
        rounds,
    )


@register(
    "local_search",
    kind="heuristic",
    anytime=True,
    aliases=("local",),
    summary="relocate+swap hill climbing over an inner partition",
)
class LocalSearchAnonymizer(Anonymizer):
    """Wrap any partition-based anonymizer with a hill-climbing pass.

    >>> from repro.algorithms import CenterCoverAnonymizer
    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (1, 0), (1, 1), (5, 5), (5, 5)])
    >>> base = CenterCoverAnonymizer()
    >>> polished = LocalSearchAnonymizer(base)
    >>> polished.anonymize(t, 2).stars <= base.anonymize(t, 2).stars
    True
    """

    def __init__(self, inner: Anonymizer | None = None, max_rounds: int = 50,
                 backend=None, budget=None, trace=None):
        from repro.algorithms.center_cover import CenterCoverAnonymizer

        super().__init__(backend=backend, budget=budget, trace=trace)
        self._inner = inner if inner is not None else CenterCoverAnonymizer()
        self._max_rounds = max_rounds
        self.name = f"{self._inner.name}+local"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        with run.phase("base"):
            base = self._inner.anonymize(table, k, timeout=run.budget)
        if base.partition is None or table.n_rows == 0:
            return base
        with run.phase("improve"):
            improved, rounds = improve_partition(
                table, base.partition, max_rounds=self._max_rounds,
                backend=run.backend, run=run,
            )
        result = self._result_from_partition(
            table, k, improved,
            {"base_stars": base.stars, "rounds": rounds,
             "base_algorithm": self._inner.name},
            run=run,
        )
        assert result.stars <= base.stars
        return result
