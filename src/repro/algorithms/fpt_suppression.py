"""Exact optimal suppression, fixed-parameter tractable in the degree.

The paper proves optimal k-anonymity NP-hard in general (Theorem 3.1),
but the hardness needs *wide* relations: Bonizzoni et al.
("Parameterized Complexity of k-Anonymity") show the problem is FPT
when the number of attributes m (and the alphabet) is bounded.  This
module instantiates that regime with a dynamic program over
**attribute-suppression patterns** — the column-subset analogue of the
row-subset DP in :mod:`repro.algorithms.partition_dp`.

Formulation.  WLOG an optimal solution is described by its *released
vectors*: pairs ``(projection, pattern)`` where ``pattern ⊆ [m]`` is the
starred column set and ``projection`` the shared values on the kept
columns.  A row of kind ``r`` is compatible with exactly one released
vector per pattern ``P`` — ``(r restricted to [m] \\ P, P)`` — so a
solution is an assignment of row counts to patterns, per distinct row
kind, subject to every used vector receiving 0 or >= k rows, minimizing
``sum assigned_rows * |P|``.  Both directions of the equivalence with
(k, 2k-1)-partitions are elementary: a partition maps each group to the
vector of its disagreement set, and a feasible assignment splits each
vector's rows into groups of size in [k, 2k-1] whose true cost never
exceeds the assignment's (the disagreement set of a subgroup is
contained in the vector's pattern).

The DP processes distinct row kinds in first-appearance order and
tracks, per *open* released vector (one whose kind class still has
unprocessed members), only its deficit below k — counts cap at k, so
the state space is bounded by ``(k+1)^(2^m * sigma^m)``
(:func:`repro.theory.fpt_suppression_states`): a function of the
parameters alone, with per-row work polynomial in n.  Reachable states
are far fewer; the solver still guards with ``max_states`` and refuses
instances outside the bounded-m regime instead of hanging.

Compared to the other exact tiers: the subset DP
(:mod:`repro.algorithms.exact`) is exponential in n regardless of m;
the multiplicity DP (:mod:`repro.algorithms.small_m`) is exponential in
the number of *distinct rows*; this solver is exponential only in
``m`` / ``sigma`` and reaches n in the hundreds on narrow tables.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register
from repro.theory import exact_bound


def fpt_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    """Planner predicate: is the pattern DP's regime plausible here?

    The DP is exponential in the number of patterns (``2^m``) and in the
    distinct-record count (at most ``sigma^m``, capped by n), so the
    regime is narrow tables over small alphabets.  The thresholds are
    deliberately conservative — refusing an instance the solver could
    have handled costs only optimality on that instance (the planner
    falls through to the approximation tier), while accepting one it
    cannot handle wastes the whole budget.
    """
    if n < k:
        return False
    distinct = min(n, sigma ** m) if sigma > 0 else 0
    return m <= 3 and k <= 4 and distinct <= 30


def fpt_cost_model(n: int, m: int, sigma: int, k: int) -> float:
    """Planner cost model: estimated normalized ops for the pattern DP.

    The A* search settles few states when most row kinds hold >= k
    copies (they close their own zero-cost vector), and the most when
    ``n < k * distinct`` — then almost every kind must join a mixed
    group and the deficit frontier is widest.  The settled-state
    estimates below are calibrated against measured runs (m=3, sigma=3,
    k=3: n=30 settles ~24k states in ~0.45 s; n=120 settles ~330 in
    ~8 ms) at ~30 ops per state per pattern on the
    :data:`repro.registry.CALIBRATED_OPS_PER_SECOND` scale.
    """
    patterns = 2 ** m
    distinct = max(1, min(n, sigma ** m) if sigma > 0 else 1)
    if n >= 2 * k * distinct:
        settled = 4.0 * distinct
    elif n >= k * distinct:
        settled = 3_000.0
    else:
        settled = 30_000.0
    return settled * patterns * 30.0 + n * m * 50.0


@register(
    "fpt_suppression",
    kind="exact",
    bound=exact_bound,
    bound_label="1 — provably optimal",
    aliases=("fpt", "pattern_dp"),
    summary="FPT pattern-DP exact optimum; narrow tables (bounded m)",
    parameterized=True,
    applicable=fpt_applicable,
    cost_model=fpt_cost_model,
)
class FPTSuppressionAnonymizer(Anonymizer):
    """Exact optimum via DP over attribute-suppression patterns.

    Fixed-parameter tractable in ``(k, m, sigma)``: the running time is
    ``f(k, m, sigma) * poly(n)``, so the solver reaches row counts far
    beyond the subset DP's ~16-row wall whenever the table is narrow.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0)] * 3 + [(0, 1)] * 3)
    >>> FPTSuppressionAnonymizer().anonymize(t, 3).stars
    0
    """

    name = "fpt_suppression"

    def __init__(self, max_degree: int = 8, max_states: int = 200_000,
                 backend=None, budget=None, trace=None):
        super().__init__(backend=backend, budget=budget, trace=trace)
        #: guard: refuse relations wider than this (patterns = 2^m)
        self._max_degree = max_degree
        #: guard: refuse instances whose DP frontier would blow up
        self._max_states = max_states

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        m = table.degree
        if m > self._max_degree:
            raise ValueError(
                f"degree {m} exceeds the max_degree={self._max_degree} "
                "guard; the pattern DP is exponential in m — use "
                "CenterCoverAnonymizer for wide tables"
            )
        budget = run.budget
        kinds = table.distinct_rows()
        multiplicity = table.row_multiset()
        counts = [multiplicity[kind] for kind in kinds]
        n_kinds = len(kinds)
        patterns = list(range(1 << m))
        weight = [bin(p).count("1") for p in patterns]

        # Released-vector interning: kind i under pattern p always maps
        # to the vector (projection of kind i onto [m] \ p, p).
        with run.phase("patterns"):
            kept = [
                tuple(j for j in range(m) if not (p >> j) & 1)
                for p in patterns
            ]
            vector_ids: dict[tuple, int] = {}
            vec_of: list[list[int]] = []
            last_kind: dict[int, int] = {}
            for i, kind in enumerate(kinds):
                row_vecs = []
                for p in patterns:
                    signature = (p, tuple(kind[j] for j in kept[p]))
                    vec = vector_ids.setdefault(signature, len(vector_ids))
                    row_vecs.append(vec)
                    last_kind[vec] = i
                vec_of.append(row_vecs)
        run.count("patterns", len(patterns))
        run.count("released_vectors", len(vector_ids))

        # Per-vector suffix capacity: rows of the vector's class still
        # unprocessed once kinds < i are done.  A state holding an open
        # vector whose deficit exceeds its suffix capacity can never
        # become feasible, so such top-ups are pruned at creation.
        suffix_cap: dict[int, list[int]] = {
            v: [0] * (n_kinds + 1) for v in last_kind
        }
        for i in range(n_kinds - 1, -1, -1):
            for v, caps in suffix_cap.items():
                caps[i] = caps[i + 1]
            for v in set(vec_of[i]):
                suffix_cap[v][i] += counts[i]

        # Admissible per-kind lower bound: any feasible completion
        # routes every copy of kind r through a pattern whose vector's
        # class holds >= k rows in total, so each copy pays at least
        # wtil[r]; consistency follows from the capacity pruning above.
        wtil = [
            min(
                weight[p]
                for p in patterns
                if suffix_cap[vec_of[r][p]][0] >= k
            )
            for r in range(n_kinds)
        ]
        hsuf = [0] * (n_kinds + 1)
        for i in range(n_kinds - 1, -1, -1):
            hsuf[i] = hsuf[i + 1] + counts[i] * wtil[i]

        # A* over (kind index, open-vector deficit state).  A state maps
        # open vectors to deficit-capped counts (min(assigned, k)); per
        # kind, copies split into per-pattern top-ups t_p <= k - cnt_p
        # plus a remainder dumped on the cheapest vector that ends
        # saturated (extra copies on a saturated vector change cost, not
        # state, so dumping anywhere else is dominated).  Vectors whose
        # class has no kinds left close as each layer advances: their
        # count must then be 0 or k.
        # Edges out of a state are enumerated lazily, stratified by
        # exact edge cost: the heap holds (f, layer, state, d) markers,
        # each enumerating only the per-pattern top-up combos of total
        # cost d before re-queueing itself for d + 1.  The search thus
        # never materializes the (k+1)^patterns combo space around
        # states it does not actually need to leave expensively.
        start = (0, ())
        dist: dict[tuple[int, tuple], int] = {start: 0}
        parent: dict[tuple[int, tuple], tuple[tuple, tuple]] = {}
        heap: list[tuple[int, int, tuple, int]] = [
            (hsuf[1] if n_kinds else 0, 0, (), 0)
        ]
        opt = None
        explored = 0

        while heap:
            f, i, skey, d = heapq.heappop(heap)
            if i == n_kinds:
                opt = dist[(i, skey)]
                break
            g = dist[(i, skey)]
            if f != g + d + hsuf[i + 1]:
                continue  # stale marker: the state has been improved
            explored += 1
            if explored % 64 == 0:
                budget.check("fpt_suppression pattern DP")
            c = counts[i]
            vecs = vec_of[i]
            scounts = dict(skey)
            current = [scounts.get(v, 0) for v in vecs]
            # Top-up choices per pattern: 0 keeps an untouched vector
            # closed; otherwise the count after this kind must leave a
            # deficit coverable by the class's remaining rows.
            choices: list[tuple[int, ...]] = []
            dead = False
            for p in patterns:
                cnt = current[p]
                hi = min(c, k - cnt)
                lo = k - cnt - suffix_cap[vecs[p]][i + 1]
                opts: list[int] = []
                if cnt == 0 or lo <= 0:
                    opts.append(0)
                lo = max(lo, 1)
                if lo <= hi:
                    opts.extend(range(lo, hi + 1))
                if not opts:
                    dead = True
                    break
                choices.append(tuple(opts))
            if dead:
                continue
            closing = {v for v in vecs if last_kind[v] == i}

            def relax(taken: list[int], remainder: int, dump: int) -> None:
                merged = dict(scounts)
                for p in patterns:
                    add = taken[p] + (remainder if p == dump else 0)
                    if add:
                        v = vecs[p]
                        merged[v] = min(k, merged.get(v, 0) + add)
                for v in closing:
                    got = merged.pop(v, 0)
                    if 0 < got < k:
                        return
                key = (i + 1, tuple(sorted(merged.items())))
                candidate = g + d
                if candidate < dist.get(key, _HUGE):
                    dist[key] = candidate
                    parent[key] = (
                        skey,
                        tuple(
                            (p, taken[p] + (remainder if p == dump else 0))
                            for p in patterns
                            if taken[p] or p == dump
                        ),
                    )
                    nxt = hsuf[i + 2] if i + 1 < n_kinds else 0
                    heapq.heappush(
                        heap, (candidate + nxt, i + 1, key[1], 0)
                    )

            def extend(p_index: int, spent: int, delta: int,
                       taken: list[int]) -> None:
                if delta > d:
                    return
                if p_index == len(patterns):
                    remainder = c - spent
                    dump = -1
                    if remainder > 0:
                        dump_weight = None
                        for p in patterns:
                            if current[p] + taken[p] >= k and (
                                dump_weight is None
                                or weight[p] < dump_weight
                            ):
                                dump_weight = weight[p]
                                dump = p
                        if dump < 0:
                            return  # nowhere to place the rest
                        delta += remainder * dump_weight
                    if delta == d:
                        relax(taken, remainder, dump)
                    return
                for t in choices[p_index]:
                    if spent + t > c:
                        continue
                    taken.append(t)
                    extend(p_index + 1, spent + t,
                           delta + t * weight[p_index], taken)
                    taken.pop()

            extend(0, 0, 0, [])
            if d < c * m:  # edge costs are bounded by all-suppressed
                heapq.heappush(
                    heap, (g + d + 1 + hsuf[i + 1], i, skey, d + 1)
                )
            if len(dist) > self._max_states:
                raise ValueError(
                    f"pattern-DP frontier {len(dist)} exceeds "
                    f"max_states={self._max_states}; this instance is "
                    "outside the bounded-m regime"
                )
        run.count("dp_states", explored)

        assert opt is not None, \
            "the all-suppressed assignment is always feasible"

        # Walk the back-pointers to per-kind pattern assignments, then
        # materialize groups vector by vector.
        with run.phase("rebuild"):
            assignment: list[tuple[tuple[int, int], ...]] = [()] * n_kinds
            key: tuple = ()
            for i in range(n_kinds - 1, -1, -1):
                key, dist_rec = parent[(i + 1, key)]
                assignment[i] = dist_rec
            queues = {kind: deque() for kind in kinds}
            for index, row in enumerate(table.rows):
                queues[row].append(index)
            vector_rows: dict[int, list[int]] = {}
            for i, dist in enumerate(assignment):
                for p, count in dist:
                    members = vector_rows.setdefault(vec_of[i][p], [])
                    for _ in range(count):
                        members.append(queues[kinds[i]].popleft())
            groups: list[frozenset[int]] = []
            for members in vector_rows.values():
                remaining = list(members)
                while len(remaining) > 2 * k - 1:
                    groups.append(frozenset(remaining[:k]))
                    remaining = remaining[k:]
                groups.append(frozenset(remaining))
        partition = Partition(groups, table.n_rows, k)
        result = self._result_from_partition(
            table, k, partition,
            {"opt": int(opt), "patterns": len(patterns),
             "released_vectors": len(vector_ids), "dp_states": explored},
            run=run,
        )
        assert result.stars <= opt, "splitting never exceeds the pattern cost"
        assert result.stars == opt, "a cheaper split contradicts optimality"
        return result


_HUGE = float("inf")
