"""Central capability registry for anonymization algorithms.

Every concrete :class:`~repro.algorithms.base.Anonymizer` subclass
self-registers here (via the :func:`register` class decorator applied at
definition site) with machine-readable metadata:

* a stable canonical **name** (``greedy_cover``, ``center_cover``, ...)
  plus CLI-friendly **aliases** (``greedy``, ``center``, ...);
* its **kind** — ``"exact"`` (provably optimal), ``"approx"`` (proven
  approximation ratio), ``"heuristic"`` (no guarantee), or
  ``"baseline"`` (comparison strawman);
* whether it is **anytime** (degrades gracefully under a
  :class:`~repro.instrument.TimeBudget` instead of raising);
* its **proven bound** as a callable ``(k, m) -> float`` taken from
  :mod:`repro.theory` (``None`` when no guarantee exists), plus a
  human-readable ``bound_label``;
* the **cost models** it optimizes (currently ``"stars"`` throughout).

The registry is the *single* source of the name→class mapping: the CLI's
``--algorithm`` choices, the ``kanon algorithms`` listing, the
experiment runners' bound dispatch, and the benchmarks all resolve
algorithms through :func:`get` / :func:`create` instead of maintaining
private dicts.

>>> from repro import registry
>>> registry.get("center").name          # aliases resolve
'center_cover'
>>> registry.get("center_cover").kind
'approx'
>>> registry.create("mondrian").anonymize  # doctest: +ELLIPSIS
<bound method ...>
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import Anonymizer

#: proven-bound callable signature: ``bound(k, m) -> float``
BoundFn = Callable[[int, int], float]

_KINDS = ("exact", "approx", "heuristic", "baseline")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registered metadata for one anonymization algorithm.

    :ivar name: canonical registry name (stable across releases).
    :ivar cls: the :class:`Anonymizer` subclass.
    :ivar kind: ``"exact"`` / ``"approx"`` / ``"heuristic"`` /
        ``"baseline"``.
    :ivar anytime: True iff the algorithm degrades gracefully when its
        time budget expires (returns its best valid release so far).
    :ivar bound: proven approximation guarantee as ``(k, m) -> float``,
        or ``None`` when the algorithm carries no guarantee.  Exact
        solvers use the constant ``1.0``.
    :ivar bound_label: human-readable form of *bound* for listings.
    :ivar cost_models: objective functions the algorithm optimizes.
    :ivar aliases: accepted alternative names (CLI shorthands).
    :ivar summary: one-line description for ``kanon algorithms``.
    :ivar factory: zero-argument-callable default constructor.
    """

    name: str
    cls: type
    kind: str
    anytime: bool = False
    bound: BoundFn | None = None
    bound_label: str | None = None
    cost_models: tuple[str, ...] = ("stars",)
    aliases: tuple[str, ...] = ()
    summary: str = ""
    factory: Callable[[], "Anonymizer"] | None = None

    def make(self) -> "Anonymizer":
        """A fresh default-configured instance."""
        return (self.factory or self.cls)()

    def proven_bound(self, k: int, m: int) -> float | None:
        """The guarantee at ``(k, m)``, or None without one."""
        return None if self.bound is None else self.bound(k, m)

    @property
    def all_names(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


_BY_NAME: dict[str, AlgorithmInfo] = {}
_BY_ALIAS: dict[str, str] = {}
_BY_CLASS: dict[type, AlgorithmInfo] = {}


def register(
    name: str,
    *,
    kind: str,
    summary: str,
    anytime: bool = False,
    bound: BoundFn | None = None,
    bound_label: str | None = None,
    cost_models: tuple[str, ...] = ("stars",),
    aliases: tuple[str, ...] = (),
    factory: Callable[[], "Anonymizer"] | None = None,
):
    """Class decorator: enter an :class:`Anonymizer` subclass into the
    registry under *name* (plus *aliases*).

    Raises :class:`ValueError` on duplicate names/aliases or an unknown
    *kind* — registration bugs should fail at import time, not at first
    lookup.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown algorithm kind {kind!r}; expected "
                         f"one of {_KINDS}")

    def decorate(cls):
        info = AlgorithmInfo(
            name=name, cls=cls, kind=kind, anytime=anytime, bound=bound,
            bound_label=bound_label, cost_models=tuple(cost_models),
            aliases=tuple(aliases), summary=summary, factory=factory,
        )
        for candidate in info.all_names:
            if candidate in _BY_NAME or candidate in _BY_ALIAS:
                raise ValueError(
                    f"algorithm name {candidate!r} registered twice"
                )
        _BY_NAME[name] = info
        for alias in info.aliases:
            _BY_ALIAS[alias] = name
        _BY_CLASS[cls] = info
        cls.registry_name = name
        return cls

    return decorate


def _ensure_loaded() -> None:
    """Import the algorithms package so every module self-registers."""
    import repro.algorithms  # noqa: F401  (import triggers registration)


def all() -> tuple[AlgorithmInfo, ...]:  # noqa: A001 - deliberate API name
    """Every registered algorithm, sorted by canonical name."""
    _ensure_loaded()
    return tuple(sorted(_BY_NAME.values(), key=lambda info: info.name))


#: alias for callers that shadow the ``all`` builtin
all_algorithms = all


def names(include_aliases: bool = False) -> tuple[str, ...]:
    """Registered canonical names (optionally with aliases), sorted."""
    _ensure_loaded()
    out = builtins.list(_BY_NAME)
    if include_aliases:
        out.extend(_BY_ALIAS)
    return tuple(sorted(out))


def get(name: str) -> AlgorithmInfo:
    """Look up by canonical name or alias.

    :raises KeyError: for an unknown name (the message lists valid ones).
    """
    _ensure_loaded()
    canonical = _BY_ALIAS.get(name, name)
    info = _BY_NAME.get(canonical)
    if info is None:
        raise KeyError(
            f"unknown algorithm {name!r}; registered names: "
            f"{', '.join(names(include_aliases=True))}"
        )
    return info


def create(name: str) -> "Anonymizer":
    """A fresh default-configured instance of the named algorithm."""
    return get(name).make()


def info_for(algorithm) -> AlgorithmInfo | None:
    """Metadata for an algorithm *instance* (or class), else ``None``.

    Matches by exact class first, then walks the MRO so app-level
    subclasses inherit their parent's registration.  Lookup is by type,
    not by ``algorithm.name`` — wrapper algorithms (local search,
    annealing) rename their instances after their inner algorithm
    (``"center_cover+local"``), which is a display name, not an
    identity.
    """
    _ensure_loaded()
    cls = algorithm if isinstance(algorithm, type) else type(algorithm)
    for base in cls.__mro__:
        info = _BY_CLASS.get(base)
        if info is not None:
            return info
    return None


def proven_bound(algorithm, k: int, m: int) -> float | None:
    """The proven approximation bound for an algorithm instance/class/
    name at ``(k, m)``, or ``None`` when it has no guarantee."""
    if isinstance(algorithm, str):
        info = get(algorithm)
    else:
        info = info_for(algorithm)
    return None if info is None else info.proven_bound(k, m)
