"""Central capability registry for anonymization algorithms.

Every concrete :class:`~repro.algorithms.base.Anonymizer` subclass
self-registers here (via the :func:`register` class decorator applied at
definition site) with machine-readable metadata:

* a stable canonical **name** (``greedy_cover``, ``center_cover``, ...)
  plus CLI-friendly **aliases** (``greedy``, ``center``, ...);
* its **kind** — ``"exact"`` (provably optimal), ``"approx"`` (proven
  approximation ratio), ``"heuristic"`` (no guarantee), or
  ``"baseline"`` (comparison strawman);
* whether it is **anytime** (degrades gracefully under a
  :class:`~repro.instrument.TimeBudget` instead of raising);
* its **proven bound** as a callable ``(k, m) -> float`` taken from
  :mod:`repro.theory` (``None`` when no guarantee exists), plus a
  human-readable ``bound_label``;
* the **cost models** it optimizes (currently ``"stars"`` throughout);
* planner-consumable **capabilities**: an ``applicable(n, m, sigma, k)``
  predicate delimiting the regime the algorithm can handle, an
  ``estimated-ops`` cost model over the same features, and a
  ``parameterized`` flag for FPT solvers (exact, but only inside their
  parameter regime).  Kind-level defaults cover registrations that do
  not supply their own, so all existing ``@register`` sites stay
  source-compatible.

The registry is the *single* source of the name→class mapping: the CLI's
``--algorithm`` choices, the ``kanon algorithms`` listing, the
experiment runners' bound dispatch, and the benchmarks all resolve
algorithms through :func:`get` / :func:`create` instead of maintaining
private dicts.

>>> from repro import registry
>>> registry.get("center").name          # aliases resolve
'center_cover'
>>> registry.get("center_cover").kind
'approx'
>>> registry.create("mondrian").anonymize  # doctest: +ELLIPSIS
<bound method ...>
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import Anonymizer

#: proven-bound callable signature: ``bound(k, m) -> float``
BoundFn = Callable[[int, int], float]

#: capability predicate signature: ``applicable(n, m, sigma, k) -> bool``
ApplicableFn = Callable[[int, int, int, int], bool]

#: cost-model signature: ``cost_model(n, m, sigma, k) -> estimated ops``
CostFn = Callable[[int, int, int, int], float]

_KINDS = ("exact", "approx", "heuristic", "baseline")

#: Calibrated throughput for converting cost-model ops into seconds.
#: Derived from the committed E9/E21 bench baselines (quick mode,
#: x86_64/CPython 3.11): the subset DP's ``2^n * n^2`` model against
#: ``test_e9_exact_dp_scaling`` (n=10: 102k ops / 8.9 ms; n=12: 590k
#: ops / 43.7 ms) and the Theorem 4.2 solver's ``n^2 * m`` model
#: against ``test_e9_center_scaling_in_n`` (n=400: 1.3M ops / 73 ms)
#: both land within 2x of 1.2e7 ops/s, so the per-model constants
#: below are normalized to this single figure.
CALIBRATED_OPS_PER_SECOND = 1.2e7


def _exact_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    # subset-mask DPs hit a wall around n = 16 regardless of m
    return k <= n <= 16


def _exact_cost(n: int, m: int, sigma: int, k: int) -> float:
    return (2.0 ** n) * n * n


def _poly_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    return n >= k


def _poly_cost(n: int, m: int, sigma: int, k: int) -> float:
    return float(n) * n * m


def _cheap_cost(n: int, m: int, sigma: int, k: int) -> float:
    return float(n) * m * 32.0


#: kind-level capability defaults for registrations without their own
_DEFAULT_APPLICABLE: dict[str, ApplicableFn] = {
    "exact": _exact_applicable,
    "approx": _poly_applicable,
    "heuristic": _poly_applicable,
    "baseline": _poly_applicable,
}
_DEFAULT_COST: dict[str, CostFn] = {
    "exact": _exact_cost,
    "approx": _poly_cost,
    "heuristic": _poly_cost,
    "baseline": _cheap_cost,
}


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registered metadata for one anonymization algorithm.

    :ivar name: canonical registry name (stable across releases).
    :ivar cls: the :class:`Anonymizer` subclass.
    :ivar kind: ``"exact"`` / ``"approx"`` / ``"heuristic"`` /
        ``"baseline"``.
    :ivar anytime: True iff the algorithm degrades gracefully when its
        time budget expires (returns its best valid release so far).
    :ivar bound: proven approximation guarantee as ``(k, m) -> float``,
        or ``None`` when the algorithm carries no guarantee.  Exact
        solvers use the constant ``1.0``.
    :ivar bound_label: human-readable form of *bound* for listings.
    :ivar cost_models: objective functions the algorithm optimizes.
    :ivar aliases: accepted alternative names (CLI shorthands).
    :ivar summary: one-line description for ``kanon algorithms``.
    :ivar factory: zero-argument-callable default constructor.
    :ivar applicable: capability predicate over instance features
        ``(n, m, sigma, k)``; ``None`` falls back to the kind default.
    :ivar cost_model: estimated-ops model over the same features
        (normalized so :data:`CALIBRATED_OPS_PER_SECOND` converts to
        seconds); ``None`` falls back to the kind default.
    :ivar parameterized: True for FPT solvers — exact, but only inside
        the regime their ``applicable`` predicate delimits.  The planner
        ranks them below unconditional exact solvers.
    """

    name: str
    cls: type
    kind: str
    anytime: bool = False
    bound: BoundFn | None = None
    bound_label: str | None = None
    cost_models: tuple[str, ...] = ("stars",)
    aliases: tuple[str, ...] = ()
    summary: str = ""
    factory: Callable[[], "Anonymizer"] | None = None
    applicable: ApplicableFn | None = None
    cost_model: CostFn | None = None
    parameterized: bool = False

    def make(self) -> "Anonymizer":
        """A fresh default-configured instance."""
        return (self.factory or self.cls)()

    def proven_bound(self, k: int, m: int) -> float | None:
        """The guarantee at ``(k, m)``, or None without one."""
        return None if self.bound is None else self.bound(k, m)

    def is_applicable(self, n: int, m: int, sigma: int, k: int) -> bool:
        """Can this algorithm plausibly handle the instance?"""
        fn = self.applicable or _DEFAULT_APPLICABLE[self.kind]
        return bool(fn(n, m, sigma, k))

    def estimated_ops(self, n: int, m: int, sigma: int, k: int) -> float:
        """Estimated normalized operations on the instance."""
        fn = self.cost_model or _DEFAULT_COST[self.kind]
        return float(fn(n, m, sigma, k))

    def estimated_seconds(self, n: int, m: int, sigma: int, k: int) -> float:
        """Wall-clock estimate via :data:`CALIBRATED_OPS_PER_SECOND`."""
        return self.estimated_ops(n, m, sigma, k) / CALIBRATED_OPS_PER_SECOND

    @property
    def all_names(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


_BY_NAME: dict[str, AlgorithmInfo] = {}
_BY_ALIAS: dict[str, str] = {}
_BY_CLASS: dict[type, AlgorithmInfo] = {}


def register(
    name: str,
    *,
    kind: str,
    summary: str,
    anytime: bool = False,
    bound: BoundFn | None = None,
    bound_label: str | None = None,
    cost_models: tuple[str, ...] = ("stars",),
    aliases: tuple[str, ...] = (),
    factory: Callable[[], "Anonymizer"] | None = None,
    applicable: ApplicableFn | None = None,
    cost_model: CostFn | None = None,
    parameterized: bool = False,
):
    """Class decorator: enter an :class:`Anonymizer` subclass into the
    registry under *name* (plus *aliases*).

    Raises :class:`ValueError` on duplicate names/aliases or an unknown
    *kind* — registration bugs should fail at import time, not at first
    lookup.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown algorithm kind {kind!r}; expected "
                         f"one of {_KINDS}")

    def decorate(cls):
        info = AlgorithmInfo(
            name=name, cls=cls, kind=kind, anytime=anytime, bound=bound,
            bound_label=bound_label, cost_models=tuple(cost_models),
            aliases=tuple(aliases), summary=summary, factory=factory,
            applicable=applicable, cost_model=cost_model,
            parameterized=parameterized,
        )
        if parameterized and kind != "exact":
            raise ValueError(
                f"{name!r}: parameterized is reserved for exact solvers"
            )
        for candidate in info.all_names:
            if candidate in _BY_NAME or candidate in _BY_ALIAS:
                raise ValueError(
                    f"algorithm name {candidate!r} registered twice"
                )
        _BY_NAME[name] = info
        for alias in info.aliases:
            _BY_ALIAS[alias] = name
        _BY_CLASS[cls] = info
        cls.registry_name = name
        return cls

    return decorate


def _ensure_loaded() -> None:
    """Import the algorithms package so every module self-registers."""
    import repro.algorithms  # noqa: F401  (import triggers registration)


def all() -> tuple[AlgorithmInfo, ...]:  # noqa: A001 - deliberate API name
    """Every registered algorithm, sorted by canonical name."""
    _ensure_loaded()
    return tuple(sorted(_BY_NAME.values(), key=lambda info: info.name))


#: alias for callers that shadow the ``all`` builtin
all_algorithms = all


def names(include_aliases: bool = False) -> tuple[str, ...]:
    """Registered canonical names (optionally with aliases), sorted."""
    _ensure_loaded()
    out = builtins.list(_BY_NAME)
    if include_aliases:
        out.extend(_BY_ALIAS)
    return tuple(sorted(out))


def get(name: str) -> AlgorithmInfo:
    """Look up by canonical name or alias.

    :raises KeyError: for an unknown name (the message lists valid ones).
    """
    _ensure_loaded()
    canonical = _BY_ALIAS.get(name, name)
    info = _BY_NAME.get(canonical)
    if info is None:
        raise KeyError(
            f"unknown algorithm {name!r}; registered names: "
            f"{', '.join(names(include_aliases=True))}"
        )
    return info


def create(name: str) -> "Anonymizer":
    """A fresh default-configured instance of the named algorithm."""
    return get(name).make()


def info_for(algorithm) -> AlgorithmInfo | None:
    """Metadata for an algorithm *instance* (or class), else ``None``.

    Matches by exact class first, then walks the MRO so app-level
    subclasses inherit their parent's registration.  Lookup is by type,
    not by ``algorithm.name`` — wrapper algorithms (local search,
    annealing) rename their instances after their inner algorithm
    (``"center_cover+local"``), which is a display name, not an
    identity.
    """
    _ensure_loaded()
    cls = algorithm if isinstance(algorithm, type) else type(algorithm)
    for base in cls.__mro__:
        info = _BY_CLASS.get(base)
        if info is not None:
            return info
    return None


def proven_bound(algorithm, k: int, m: int) -> float | None:
    """The proven approximation bound for an algorithm instance/class/
    name at ``(k, m)``, or ``None`` when it has no guarantee."""
    if isinstance(algorithm, str):
        info = get(algorithm)
    else:
        info = info_for(algorithm)
    return None if info is None else info.proven_bound(k, m)
