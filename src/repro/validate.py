"""Release validation: the publisher's final gate.

Before releasing an anonymized table, verify *everything* in one call:
the release is a pure suppression of the original (Definition 2.1), it
is k-anonymous (Definition 2.2), its prosecutor risk is capped at 1/k,
and collect the cost/utility numbers a publisher reports.

:func:`validate_release` never raises on a bad release — it returns a
:class:`ValidationReport` whose ``ok`` property and ``problems`` list
say what is wrong, suitable for CI gates and the ``kanon validate``
command.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.anonymity import (
    anonymity_level,
    suppressed_cell_count,
    violating_rows,
)
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.privacy.risk import risk_report


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a release against its original."""

    k: int
    is_suppression: bool
    anonymity: float
    stars: int
    suppression_ratio: float
    max_risk: float
    problems: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True iff the release may be published at the claimed k."""
        return not self.problems

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        verdict = "RELEASE OK" if self.ok else "DO NOT RELEASE"
        lines = [
            f"{verdict} (k={self.k})",
            f"  suppression-only transform: {self.is_suppression}",
            f"  anonymity level: {self.anonymity}",
            f"  suppressed cells: {self.stars} "
            f"({self.suppression_ratio:.1%})",
            f"  max prosecutor risk: {self.max_risk:.4f}",
        ]
        lines.extend(f"  PROBLEM: {problem}" for problem in self.problems)
        return "\n".join(lines)


def validate_release(original: Table, released: Table, k: int) -> ValidationReport:
    """Validate that *released* is a publishable k-anonymization of
    *original*.

    Checks performed:

    1. shape match (same rows/degree/attributes);
    2. Definition 2.1 — every released cell is the original value or *;
    3. Definition 2.2 — every record occurs at least k times;
    4. prosecutor risk is at most 1/k (implied by 3; reported anyway).
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    problems: list[str] = []

    if (original.n_rows, original.degree) != (released.n_rows, released.degree):
        problems.append(
            f"shape mismatch: original {original.n_rows}x{original.degree}, "
            f"released {released.n_rows}x{released.degree}"
        )
        return ValidationReport(
            k=k, is_suppression=False, anonymity=0, stars=0,
            suppression_ratio=0.0, max_risk=1.0, problems=tuple(problems),
        )
    if original.attributes != released.attributes:
        problems.append("attribute names differ between original and release")

    is_suppression = True
    try:
        Suppressor.from_tables(original, released)
    except ValueError as error:
        is_suppression = False
        problems.append(f"not a pure suppression: {error}")

    level = anonymity_level(released)
    if level < k:
        bad = violating_rows(released, k)
        problems.append(
            f"not {k}-anonymous: level {level}, {len(bad)} violating rows "
            f"(first few: {bad[:5]})"
        )

    stars = suppressed_cell_count(released)
    total = max(1, released.total_cells())
    risk = risk_report(released)
    if released.n_rows and not risk.meets_k(k):
        problems.append(
            f"max prosecutor risk {risk.max_risk:.4f} exceeds 1/k"
        )

    return ValidationReport(
        k=k,
        is_suppression=is_suppression,
        anonymity=level,
        stars=stars,
        suppression_ratio=stars / total,
        max_risk=risk.max_risk,
        problems=tuple(problems),
    )
