"""Resumable run artifacts for the experiment runners.

A *run directory* records an experiment sweep one trial at a time so an
interrupted (or deliberately staged) sweep can be resumed without
redoing finished work:

* ``manifest.json`` — the experiment's identity: name plus the exact
  configuration (algorithm, k, workload sizes, seeds).  A resume
  attempt against a directory whose manifest disagrees fails loudly —
  silently mixing two different sweeps in one directory would corrupt
  both.
* ``trials.jsonl`` — one JSON record per *completed* trial, appended
  (and flushed) the moment the trial finishes.  Records carry the trial
  key, the per-trial seed, algorithm, k, measured cost / optimum /
  timings, the workload's **instance hash**, and a trace summary when
  tracing was on.

On resume the runner regenerates each finished trial's workload from
its recorded seed (cheap — generation only, no solving) and verifies
the instance hash before trusting the stored result; a mismatch means
the code or configuration drifted since the record was written, and
raises :class:`ArtifactMismatchError` instead of returning stale data.

>>> import tempfile
>>> from repro.artifacts import RunStore
>>> with tempfile.TemporaryDirectory() as tmp:
...     store = RunStore(tmp, experiment="demo", config={"k": 3})
...     _ = store.record("trial-0", cost=4, opt=2)
...     resumed = RunStore(tmp, experiment="demo", config={"k": 3},
...                        resume=True)
...     resumed.done("trial-0"), resumed.get("trial-0")["cost"]
(True, 4)
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core.table import Table
from repro.io import append_jsonl, read_json, read_jsonl, write_json

MANIFEST_NAME = "manifest.json"
TRIALS_NAME = "trials.jsonl"

#: bump when the record layout changes incompatibly
ARTIFACT_VERSION = 1


class ArtifactMismatchError(RuntimeError):
    """A run directory disagrees with the requested experiment.

    Raised when a manifest's experiment/config differs from the caller's,
    when a directory holds trial records but ``resume`` was not
    requested, or when a resumed trial's regenerated workload hashes
    differently than the recorded instance.
    """


def table_hash(table: Table) -> str:
    """Deterministic content hash of a relation (attributes + rows).

    Stable across processes and platforms — suppressed cells render as
    ``*`` and values by their ``repr``.

    >>> from repro.core.table import Table
    >>> a = table_hash(Table([(1, 2)], attributes=("x", "y")))
    >>> b = table_hash(Table([(1, 2)], attributes=("x", "y")))
    >>> a == b, len(a)
    (True, 16)
    """
    payload = repr((table.attributes, table.rows)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _privacy_tag(privacy: Mapping[str, Any]) -> tuple:
    """Canonical, repr-stable form of a privacy configuration."""
    return tuple(
        (str(key), repr(privacy[key])) for key in sorted(privacy)
    )


def instance_key(
    table: Table,
    k: int,
    algorithm: str,
    backend: str,
    privacy: Mapping[str, Any] | None = None,
) -> str:
    """Content-addressed identity of one anonymization *instance*.

    Combines the table's :func:`table_hash` with ``k``, the algorithm's
    canonical name, and the distance-backend name — the four inputs that
    determine a solver's output.  The backend is part of the key on
    purpose: the two backends are parity-tested, but a cache must never
    *assume* bit-identical results across implementations, so entries
    computed under different backends stay separate.

    ``privacy`` (the service protocol's normalized privacy block —
    ``sensitive`` / ``l`` / ``t`` / ``epsilon``) extends the key the
    same way: a release under one privacy configuration must never be
    served for another, or for a plain request.  ``privacy=None``
    leaves the key byte-identical to the historical four-input form.

    Used by the service-layer solution cache (:mod:`repro.service.cache`)
    and stable across processes and platforms.

    >>> from repro.core.table import Table
    >>> t = Table([(1, 2), (1, 2), (3, 4)], attributes=("x", "y"))
    >>> a = instance_key(t, 2, "center_cover", "python")
    >>> a == instance_key(t, 2, "center_cover", "python")
    True
    >>> a != instance_key(t, 2, "center_cover", "numpy")
    True
    >>> len(a)
    32
    >>> p = instance_key(t, 2, "center_cover", "python", {"l": 2})
    >>> p != a and p != instance_key(
    ...     t, 2, "center_cover", "python", {"l": 3})
    True
    """
    fields: tuple = (table_hash(table), int(k), str(algorithm), str(backend))
    if privacy is not None:
        fields = fields + (_privacy_tag(privacy),)
    payload = repr(fields).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


def state_key(
    table: Table,
    k: int,
    algorithm: str,
    backend: str,
) -> str:
    """Content-addressed identity of a solver's **continuation state**.

    Same inputs as :func:`instance_key` but a disjoint digest namespace:
    the solution for an instance and the streaming-engine snapshot that
    can *extend* that instance are different artifacts and must never
    collide in the cache, even though they describe the same
    ``(table, k, algorithm, backend)``.  Used by the service's ``delta``
    verb to store and look up ``IncrementalState`` snapshots alongside
    solutions.

    >>> from repro.core.table import Table
    >>> t = Table([(1, 2), (1, 2), (3, 4)], attributes=("x", "y"))
    >>> a = state_key(t, 2, "incremental", "python")
    >>> a == state_key(t, 2, "incremental", "python")
    True
    >>> a != instance_key(t, 2, "incremental", "python")
    True
    >>> len(a)
    32
    """
    payload = repr(
        ("state", table_hash(table), int(k), str(algorithm), str(backend))
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


def _canonical(config: dict[str, Any]) -> dict[str, Any]:
    """The JSON-round-tripped form of *config* (what lands on disk)."""
    return json.loads(json.dumps(config, sort_keys=True))


class RunStore:
    """Append-only per-trial record store in one run directory.

    :param path: run directory (created, parents included, if absent).
    :param experiment: experiment name, e.g. ``"ratio"``.
    :param config: JSON-serializable experiment configuration; on
        resume it must match the stored manifest exactly.
    :param resume: allow continuing a directory that already holds
        trial records.

    :raises ArtifactMismatchError: on manifest/config disagreement, or
        when the directory already holds records and *resume* is False.
    """

    def __init__(
        self,
        path: str | Path,
        experiment: str,
        config: dict[str, Any],
        resume: bool = False,
    ):
        self.path = Path(path)
        self.experiment = experiment
        self.config = _canonical(config)
        self.path.mkdir(parents=True, exist_ok=True)
        self._trials_path = self.path / TRIALS_NAME
        manifest_path = self.path / MANIFEST_NAME

        if manifest_path.exists():
            manifest = read_json(manifest_path)
            if (
                manifest.get("experiment") != experiment
                or manifest.get("config") != self.config
            ):
                raise ArtifactMismatchError(
                    f"run directory {self.path} holds experiment "
                    f"{manifest.get('experiment')!r} with a different "
                    f"configuration; refusing to mix sweeps "
                    f"(wanted {experiment!r} {self.config!r})"
                )
        else:
            write_json(manifest_path, {
                "experiment": experiment,
                "config": self.config,
                "version": ARTIFACT_VERSION,
            })

        self._records: dict[str, dict[str, Any]] = {}
        if self._trials_path.exists():
            for record in read_jsonl(self._trials_path):
                self._records[record["key"]] = record
        if self._records and not resume:
            raise ArtifactMismatchError(
                f"run directory {self.path} already holds "
                f"{len(self._records)} trial record(s); pass resume=True "
                f"(CLI: --resume) to continue it, or point at a fresh "
                f"directory"
            )

    # ------------------------------------------------------------------

    def done(self, key: str) -> bool:
        """True iff a record for *key* exists."""
        return key in self._records

    def get(self, key: str) -> dict[str, Any]:
        """The stored record for *key* (KeyError if absent)."""
        return self._records[key]

    def record(self, key: str, **payload: Any) -> dict[str, Any]:
        """Append a completed-trial record and return it.

        Re-recording an existing key is rejected — a resume that solved
        a trial twice indicates a bookkeeping bug upstream.
        """
        if key in self._records:
            raise ArtifactMismatchError(
                f"trial {key!r} already recorded in {self.path}"
            )
        record = {"key": key, **payload}
        append_jsonl(self._trials_path, record)
        self._records[key] = record
        return record

    def check_instance(self, key: str, instance_hash: str) -> None:
        """Assert a resumed trial's regenerated workload matches its
        record (no-op for unknown keys)."""
        recorded = self._records.get(key, {}).get("instance_hash")
        if recorded is not None and recorded != instance_hash:
            raise ArtifactMismatchError(
                f"trial {key!r}: regenerated instance hashes to "
                f"{instance_hash}, but the run directory recorded "
                f"{recorded} — the workload or configuration changed "
                f"since this run was written"
            )

    @property
    def completed_keys(self) -> tuple[str, ...]:
        """Keys of all recorded trials, in record order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"RunStore({str(self.path)!r}, experiment="
            f"{self.experiment!r}, trials={len(self)})"
        )
