"""Capability-driven algorithm selection (``algorithm="auto"``).

The paper's landscape is a ladder of regimes: exact optimum where the
instance is tiny (subset DP, branch-and-bound), exact-but-parameterized
where the relation is narrow (the pattern DP of
:mod:`repro.algorithms.fpt_suppression`, the multiplicity DP of
:mod:`repro.algorithms.small_m`), the proven O(k log m) approximation of
Theorem 4.2 everywhere else, and unguaranteed heuristics as a last
resort.  The planner walks that ladder per instance: it reads each
registration's capability metadata (:class:`repro.registry.AlgorithmInfo`
``is_applicable`` / ``estimated_seconds``), filters by the time budget
actually remaining, and picks the strongest affordable tier —

    exact (tier 0)  >  parameterized exact (tier 1)
        >  proven approximation (tier 2)  >  heuristic/baseline (tier 3)

breaking ties within a tier by estimated cost.  The full ranking, with
per-candidate reasons, is returned as a :class:`PlanDecision` and
recorded into the run trace so a dispatch can always be audited.

>>> from repro.core.table import Table
>>> t = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 2)
>>> plan(t, 2).algorithm
'branch_bound'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import registry
from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    InfeasibleAnonymizationError,
)
from repro.core.table import Table
from repro.instrument import BudgetExceededError, TimeBudget, as_budget

#: allowance when no budget limits the request: refuse plans estimated
#: beyond this many seconds even though nothing is counting down
DEFAULT_SOFT_CAP_SECONDS = 30.0

#: fraction of the remaining budget a plan may claim — cost models are
#: order-of-magnitude calibrations, so leave half the budget as margin
BUDGET_SAFETY_FRACTION = 0.5

#: the always-applicable, strongly polynomial, proven-bound fallback
FALLBACK_ALGORITHM = "center_cover"

#: kind/parameterized -> planner tier (lower is stronger)
TIER_EXACT, TIER_FPT, TIER_APPROX, TIER_HEURISTIC = 0, 1, 2, 3


def tier_of(info: registry.AlgorithmInfo) -> int:
    if info.kind == "exact":
        return TIER_FPT if info.parameterized else TIER_EXACT
    if info.kind == "approx" and info.bound is not None:
        return TIER_APPROX
    return TIER_HEURISTIC


@dataclass(frozen=True)
class InstanceFeatures:
    """The features the capability predicates and cost models consume."""

    n: int
    m: int
    sigma: int
    k: int

    @classmethod
    def from_table(cls, table: Table, k: int) -> "InstanceFeatures":
        sigma = max(
            (len(alphabet) for alphabet in table.alphabets()), default=0
        )
        return cls(n=table.n_rows, m=table.degree, sigma=sigma, k=k)

    def to_dict(self) -> dict[str, int]:
        return {"n": self.n, "m": self.m, "sigma": self.sigma, "k": self.k}


@dataclass(frozen=True)
class PlanCandidate:
    """One algorithm's evaluation against an instance."""

    name: str
    kind: str
    tier: int
    parameterized: bool
    anytime: bool
    est_seconds: float
    applicable: bool
    affordable: bool
    reason: str

    @property
    def selectable(self) -> bool:
        return self.applicable and self.affordable

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "tier": self.tier,
            "parameterized": self.parameterized,
            "anytime": self.anytime,
            "est_seconds": self.est_seconds,
            "applicable": self.applicable,
            "affordable": self.affordable,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict: chosen algorithm plus the audited field.

    ``candidates`` is the full portfolio ranked selectable-first by
    (tier, estimated seconds); ``reason`` explains the winner.
    """

    algorithm: str
    reason: str
    features: InstanceFeatures
    allowance_seconds: float
    remaining_seconds: float | None
    candidates: tuple[PlanCandidate, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "reason": self.reason,
            "features": self.features.to_dict(),
            "allowance_seconds": self.allowance_seconds,
            "remaining_seconds": self.remaining_seconds,
            "candidates": [c.to_dict() for c in self.candidates],
        }


def plan_features(
    features: InstanceFeatures,
    *,
    budget: "TimeBudget | float | int | None" = None,
    soft_cap: float = DEFAULT_SOFT_CAP_SECONDS,
) -> PlanDecision:
    """Rank the registered portfolio against *features* and a budget.

    With a limited budget, a candidate is affordable while its estimate
    fits in ``remaining * BUDGET_SAFETY_FRACTION``; without one, the
    *soft_cap* plays that role so an unbounded request still never picks
    a solver estimated at minutes.  If nothing is both applicable and
    affordable the proven-bound :data:`FALLBACK_ALGORITHM` is chosen
    regardless — a request always gets a valid release.
    """
    armed = as_budget(budget).start()
    remaining = armed.remaining()
    if remaining is None:
        allowance = soft_cap
    else:
        allowance = max(0.0, remaining) * BUDGET_SAFETY_FRACTION
    n, m, sigma, k = features.n, features.m, features.sigma, features.k

    candidates = []
    for info in registry.all_algorithms():
        applicable = info.is_applicable(n, m, sigma, k)
        est = info.estimated_seconds(n, m, sigma, k)
        affordable = est <= allowance
        if not applicable:
            reason = (
                f"outside its regime at n={n} m={m} sigma={sigma} k={k}"
            )
        elif not affordable:
            reason = (
                f"estimated {est:.3g}s exceeds the "
                f"{allowance:.3g}s allowance"
            )
        else:
            reason = f"tier {tier_of(info)} {info.kind}, ~{est:.3g}s"
        candidates.append(PlanCandidate(
            name=info.name,
            kind=info.kind,
            tier=tier_of(info),
            parameterized=info.parameterized,
            anytime=info.anytime,
            est_seconds=est,
            applicable=applicable,
            affordable=affordable,
            reason=reason,
        ))
    candidates.sort(
        key=lambda c: (not c.selectable, c.tier, c.est_seconds, c.name)
    )

    best = next((c for c in candidates if c.selectable), None)
    if best is not None:
        chosen, reason = best.name, f"strongest affordable tier: {best.reason}"
    else:
        chosen = FALLBACK_ALGORITHM
        reason = (
            "no candidate both applicable and affordable; falling back "
            f"to the proven-bound {FALLBACK_ALGORITHM}"
        )
    return PlanDecision(
        algorithm=chosen,
        reason=reason,
        features=features,
        allowance_seconds=allowance,
        remaining_seconds=remaining,
        candidates=tuple(candidates),
    )


def plan(
    table: Table,
    k: int,
    *,
    budget: "TimeBudget | float | int | None" = None,
    soft_cap: float = DEFAULT_SOFT_CAP_SECONDS,
) -> PlanDecision:
    """:func:`plan_features` over features read off an actual table."""
    return plan_features(
        InstanceFeatures.from_table(table, k),
        budget=budget, soft_cap=soft_cap,
    )


class PlannedAnonymizer(Anonymizer):
    """The ``"auto"`` algorithm: plan, then run the chosen solver.

    Deliberately *not* registered: ``auto`` is a dispatch policy, not an
    algorithm — ``registry.get("auto")`` raises, ``proven_bound`` has no
    entry to consult, and experiment bound checks on ``auto`` fail
    loudly instead of crediting the policy with a guarantee it only
    sometimes inherits.

    The planner decision rides on the result as ``extras["plan"]`` (and
    inside ``extras["trace"]["plan"]`` when tracing): the ``algorithm``
    field of the result names the solver that actually ran.  If the
    chosen solver dies on a guard or its budget mid-run, the
    :data:`FALLBACK_ALGORITHM` reruns the request so the caller still
    gets a valid release.
    """

    name = "auto"

    def __init__(self, backend=None, budget=None, trace=None,
                 soft_cap: float = DEFAULT_SOFT_CAP_SECONDS):
        super().__init__(backend=backend, budget=budget, trace=trace)
        self._soft_cap = soft_cap

    def anonymize(
        self,
        table: Table,
        k: int,
        *,
        backend=None,
        timeout=None,
        trace: bool | None = None,
    ) -> AnonymizationResult:
        budget = as_budget(
            timeout if timeout is not None else self.budget
        ).start()
        decision = plan(table, k, budget=budget, soft_cap=self._soft_cap)
        plan_dict = decision.to_dict()
        try:
            result = self._run(decision.algorithm, table, k,
                               backend, budget, trace)
        except InfeasibleAnonymizationError:
            raise
        except (BudgetExceededError, ValueError) as exc:
            if decision.algorithm == FALLBACK_ALGORITHM:
                raise
            plan_dict["fallback"] = {
                "from": decision.algorithm,
                "error": f"{type(exc).__name__}: {exc}",
            }
            result = self._run(FALLBACK_ALGORITHM, table, k,
                               backend, budget, trace)
        result.extras["plan"] = plan_dict
        trace_dict = result.extras.get("trace")
        if isinstance(trace_dict, dict):
            trace_dict["plan"] = plan_dict
        return result

    def _run(self, name, table, k, backend, budget, trace):
        inner = registry.get(name).make()
        inner.backend = backend if backend is not None else self.backend
        inner.trace = trace if trace is not None else self.trace
        # the armed budget carries over, so planning time and the inner
        # solve draw down the same clock
        inner.budget = budget
        return inner.anonymize(table, k)

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        raise AssertionError(
            "PlannedAnonymizer overrides anonymize() wholesale"
        )
