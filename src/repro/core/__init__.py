"""Core substrate: relations, suppressors, distances, partitions.

This package implements Section 2 of Meyerson & Williams (PODS 2004):
the formal model of relations as sets of vectors over finite alphabets,
suppressors (Definition 2.1), k-anonymity (Definition 2.2), the distance
and diameter machinery of Definition 4.1, and the (k1, k2)-cover /
partition notions of Section 4.1.
"""

from repro.core.alphabet import STAR, Alphabet, infer_alphabets, is_suppressed
from repro.core.backend import (
    BitpackedBackend,
    DistanceBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    default_backend_name,
    encode_table,
    get_backend,
    make_backend,
)
from repro.core.anonymity import (
    anonymity_level,
    equivalence_classes,
    is_k_anonymous,
    suppressed_cell_count,
)
from repro.core.distance import (
    anon_cost,
    diameter,
    disagreeing_coordinates,
    distance,
    group_image,
)
from repro.core.partition import (
    Cover,
    Partition,
    anonymize_partition,
    split_into_small_groups,
)
from repro.core.suppressor import Suppressor
from repro.core.table import Table

__all__ = [
    "STAR",
    "Alphabet",
    "BitpackedBackend",
    "Cover",
    "DistanceBackend",
    "NumpyBackend",
    "Partition",
    "PythonBackend",
    "Suppressor",
    "Table",
    "anon_cost",
    "available_backends",
    "default_backend_name",
    "encode_table",
    "get_backend",
    "make_backend",
    "anonymity_level",
    "anonymize_partition",
    "diameter",
    "disagreeing_coordinates",
    "distance",
    "equivalence_classes",
    "group_image",
    "infer_alphabets",
    "is_k_anonymous",
    "is_suppressed",
    "split_into_small_groups",
    "suppressed_cell_count",
]
