"""Utility metrics for anonymized tables.

The paper's objective is the raw number of suppressed cells; the wider
k-anonymity literature evaluates released tables with several utility
measures, which the benchmark harness reports alongside the paper's
objective:

* **suppression ratio** — fraction of cells starred.
* **precision** (Sweeney 2002) — average retained specificity per cell;
  under pure suppression a cell is either fully retained (1) or fully
  suppressed (0).
* **discernibility metric** (Bayardo & Agrawal 2005) — each record is
  charged the size of its equivalence class.
* **average class size** ratio (LeFevre et al. 2006) — ``n / (#classes *
  k)``; 1.0 is ideal.
"""

from __future__ import annotations

from repro.core.anonymity import equivalence_classes, suppressed_cell_count
from repro.core.table import Table


def suppression_ratio(anonymized: Table) -> float:
    """Fraction of cells suppressed, in ``[0, 1]``."""
    total = anonymized.total_cells()
    if total == 0:
        return 0.0
    return suppressed_cell_count(anonymized) / total


def precision(anonymized: Table) -> float:
    """Sweeney's Prec metric specialized to suppression: the fraction of
    cells *retained*.  ``precision == 1 - suppression_ratio``."""
    return 1.0 - suppression_ratio(anonymized)


def discernibility(anonymized: Table) -> int:
    """Discernibility metric: sum over records of their class size.

    Smaller is better; the minimum for an n-row k-anonymous table is
    achieved by classes of size exactly k.
    """
    return sum(
        len(indices) ** 2 for indices in equivalence_classes(anonymized).values()
    )


def average_class_size_ratio(anonymized: Table, k: int) -> float:
    """``C_avg = n / (#classes * k)``; 1.0 means all classes are minimal."""
    if k < 1:
        raise ValueError("k must be positive")
    classes = equivalence_classes(anonymized)
    if not classes:
        return 0.0
    return anonymized.n_rows / (len(classes) * k)


def metric_report(anonymized: Table, k: int) -> dict[str, float | int]:
    """All metrics in one dict — used by benchmarks and the CLI."""
    return {
        "stars": suppressed_cell_count(anonymized),
        "suppression_ratio": suppression_ratio(anonymized),
        "precision": precision(anonymized),
        "discernibility": discernibility(anonymized),
        "avg_class_size_ratio": average_class_size_ratio(anonymized, k),
        "classes": len(equivalence_classes(anonymized)),
    }
