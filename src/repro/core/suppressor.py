"""Suppressors (Definition 2.1).

A suppressor ``t`` maps each vector to a copy of itself with some
coordinates replaced by ``*``.  Because the relation is a multiset, we
represent a suppressor *positionally*: row index ``i`` of the table maps
to the set of coordinate positions starred in that row's occurrence.
This strictly generalizes the paper's map on vectors (two equal vectors
may be starred differently) while containing it as a special case.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.alphabet import STAR
from repro.core.table import Table


class Suppressor:
    """A positional suppressor over an ``n``-row, degree-``m`` table.

    :param starred: mapping from row index to an iterable of coordinate
        positions to suppress in that row.  Missing rows are unchanged.
    :param n_rows: number of rows of the tables this suppressor applies to.
    :param degree: degree of those tables.

    >>> s = Suppressor({0: [1], 1: [1]}, n_rows=2, degree=2)
    >>> s.total_stars()
    2
    """

    __slots__ = ("_starred", "_n_rows", "_degree")

    def __init__(
        self,
        starred: Mapping[int, Iterable[int]],
        n_rows: int,
        degree: int,
    ):
        if n_rows < 0 or degree < 0:
            raise ValueError("n_rows and degree must be non-negative")
        cleaned: dict[int, frozenset[int]] = {}
        for i, coords in starred.items():
            if not 0 <= i < n_rows:
                raise ValueError(f"row index {i} out of range for {n_rows} rows")
            coord_set = frozenset(coords)
            for j in coord_set:
                if not 0 <= j < degree:
                    raise ValueError(
                        f"coordinate {j} out of range for degree {degree}"
                    )
            if coord_set:
                cleaned[i] = coord_set
        self._starred = cleaned
        self._n_rows = n_rows
        self._degree = degree

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, table: Table) -> "Suppressor":
        """The suppressor that stars nothing."""
        return cls({}, n_rows=table.n_rows, degree=table.degree)

    @classmethod
    def suppress_attributes(cls, table: Table, attributes: Iterable[int | str]
                            ) -> "Suppressor":
        """Star entire columns — the k-ANONYMITY-ON-ATTRIBUTES move.

        "Attribute j is suppressed by t if for all v in V, t(v)[j] = *."
        """
        coords = frozenset(
            a if isinstance(a, int) else table.attribute_index(a) for a in attributes
        )
        return cls(
            {i: coords for i in range(table.n_rows)},
            n_rows=table.n_rows,
            degree=table.degree,
        )

    @classmethod
    def from_tables(cls, original: Table, anonymized: Table) -> "Suppressor":
        """Recover the suppressor sending *original* to *anonymized*.

        :raises ValueError: if *anonymized* is not a coordinate-wise
            suppression of *original* (shape mismatch, changed values).
        """
        if original.n_rows != anonymized.n_rows or original.degree != anonymized.degree:
            raise ValueError("tables have different shapes")
        starred: dict[int, set[int]] = {}
        for i, (u, v) in enumerate(zip(original.rows, anonymized.rows)):
            for j, (a, b) in enumerate(zip(u, v)):
                if b is STAR:
                    starred.setdefault(i, set()).add(j)
                elif a != b:
                    raise ValueError(
                        f"cell ({i},{j}) changed value; not a suppression"
                    )
        return cls(starred, n_rows=original.n_rows, degree=original.degree)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def degree(self) -> int:
        return self._degree

    def starred_coordinates(self, row: int) -> frozenset[int]:
        """Coordinates suppressed in the given row occurrence."""
        if not 0 <= row < self._n_rows:
            raise ValueError(f"row index {row} out of range")
        return self._starred.get(row, frozenset())

    def total_stars(self) -> int:
        """Total number of suppressed cells — the objective the paper
        minimizes ("the total number of vector coordinates suppressed")."""
        return sum(len(coords) for coords in self._starred.values())

    def suppressed_attributes(self) -> frozenset[int]:
        """Attributes starred in *every* row (wholly suppressed columns)."""
        if self._n_rows == 0:
            return frozenset()
        common: frozenset[int] | None = None
        for i in range(self._n_rows):
            coords = self._starred.get(i, frozenset())
            common = coords if common is None else (common & coords)
            if not common:
                return frozenset()
        return common if common is not None else frozenset()

    def is_attribute_suppressor(self) -> bool:
        """True iff every star lies in a wholly suppressed column."""
        whole = self.suppressed_attributes()
        return all(coords <= whole for coords in self._starred.values())

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, table: Table) -> Table:
        """Produce the anonymized table ``t(V)``."""
        if table.n_rows != self._n_rows or table.degree != self._degree:
            raise ValueError("suppressor shape does not match the table")
        new_rows = []
        for i, row in enumerate(table.rows):
            coords = self._starred.get(i)
            if not coords:
                new_rows.append(row)
            else:
                new_rows.append(
                    tuple(STAR if j in coords else v for j, v in enumerate(row))
                )
        return table.with_rows(new_rows)

    # ------------------------------------------------------------------
    # Serialization (audit trails)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON document (for release audit logs).

        >>> Suppressor({0: [1]}, n_rows=2, degree=2).to_json()
        '{"n_rows": 2, "degree": 2, "starred": {"0": [1]}}'
        """
        import json

        return json.dumps(
            {
                "n_rows": self._n_rows,
                "degree": self._degree,
                "starred": {
                    str(i): sorted(coords)
                    for i, coords in sorted(self._starred.items())
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Suppressor":
        """Inverse of :meth:`to_json` (validates like the constructor)."""
        import json

        data = json.loads(text)
        try:
            return cls(
                {int(i): coords for i, coords in data["starred"].items()},
                n_rows=data["n_rows"],
                degree=data["degree"],
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise ValueError(f"malformed suppressor JSON: {error}") from None

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Suppressor):
            return NotImplemented
        return (
            self._starred == other._starred
            and self._n_rows == other._n_rows
            and self._degree == other._degree
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._starred.items()), self._n_rows, self._degree)
        )

    def __repr__(self) -> str:
        return (
            f"Suppressor(stars={self.total_stars()}, "
            f"n_rows={self._n_rows}, degree={self._degree})"
        )
