"""The k-anonymity predicate (Definition 2.2) and equivalence classes.

``t(V)`` is k-anonymous iff every anonymized vector belongs to a multiset
of at least ``k`` identical anonymized vectors ("k-groups").
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Hashable

from repro.core.alphabet import STAR
from repro.core.table import Table

Row = tuple[Hashable, ...]


def equivalence_classes(table: Table) -> dict[Row, list[int]]:
    """Group row indices by identical (anonymized) record.

    The returned dict maps each distinct record to the sorted list of row
    indices carrying it; these are the candidate k-groups.
    """
    classes: dict[Row, list[int]] = defaultdict(list)
    for i, row in enumerate(table.rows):
        classes[row].append(i)
    return dict(classes)


def anonymity_level(table: Table) -> float:
    """The largest ``k`` for which the table is k-anonymous.

    This is the minimum multiplicity over distinct records.  An empty
    table is vacuously k-anonymous for every k, so its level is ``inf``.
    """
    if table.n_rows == 0:
        return math.inf
    return min(len(indices) for indices in equivalence_classes(table).values())


def is_k_anonymous(table: Table, k: int) -> bool:
    """Definition 2.2: every record occurs at least ``k`` times.

    >>> t = Table([(1, STAR), (1, STAR), (2, 3)])
    >>> is_k_anonymous(t, 2)
    False
    >>> is_k_anonymous(t.select_rows([0, 1]), 2)
    True
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    return anonymity_level(table) >= k


def suppressed_cell_count(table: Table) -> int:
    """Total number of ``*`` cells — the paper's optimization objective."""
    return sum(
        1 for row in table.rows for value in row if value is STAR
    )


def violating_rows(table: Table, k: int) -> list[int]:
    """Row indices whose record occurs fewer than ``k`` times.

    Useful for diagnostics and for test assertions about *why* a table
    fails k-anonymity.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    bad: list[int] = []
    for indices in equivalence_classes(table).values():
        if len(indices) < k:
            bad.extend(indices)
    return sorted(bad)
