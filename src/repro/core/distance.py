"""Distances, diameters, and the ANON cost (Definition 4.1 and Section 4.1).

* ``distance(u, v)`` — the number of coordinates where ``u`` and ``v``
  differ; a metric on ``Sigma^m`` (the Hamming distance for categorical
  vectors).
* ``diameter(S)`` — the maximum pairwise distance within a group.
* ``anon_cost(S)`` (paper: ``ANON(S)``) — the total number of cells that
  must be suppressed to make all vectors of ``S`` textually identical.

The key structural facts used throughout the paper, all of which the test
suite checks, are:

* ``anon_cost(S) == |S| * |disagreeing_coordinates(S)|`` — a coordinate
  either agrees across the whole group and survives, or disagrees
  somewhere and must be starred in *every* member.
* ``diameter(S) <= |disagreeing_coordinates(S)| <= (|S|-1) * diameter(S)``
  — which yields Lemma 4.1's sandwich between optimal anonymity cost and
  minimum diameter sums.
* the triangle inequality on diameters of overlapping sets (Figure 1):
  ``diameter(S1 | S2) <= diameter(S1) + diameter(S2)`` when they share a
  vector.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.core.alphabet import STAR

Row = tuple[Hashable, ...]


def distance(u: Sequence[Hashable], v: Sequence[Hashable]) -> int:
    """Number of coordinates in which *u* and *v* differ (Definition 4.1).

    >>> distance((1, 0, 1, 0), (0, 1, 1, 0))
    2
    """
    if len(u) != len(v):
        raise ValueError(f"vectors of degrees {len(u)} and {len(v)} are incomparable")
    return sum(1 for a, b in zip(u, v) if a != b)


def differing_coordinates(u: Sequence[Hashable], v: Sequence[Hashable]) -> list[int]:
    """The coordinate positions where *u* and *v* differ."""
    if len(u) != len(v):
        raise ValueError(f"vectors of degrees {len(u)} and {len(v)} are incomparable")
    return [j for j, (a, b) in enumerate(zip(u, v)) if a != b]


def diameter(rows: Sequence[Sequence[Hashable]]) -> int:
    """Maximum pairwise distance within the group (the paper's ``d(S)``).

    Empty and singleton groups have diameter 0.  Short-circuits as soon
    as the running best reaches the degree ``m`` — the maximum possible
    Hamming distance — instead of finishing the O(|S|^2) scan.
    """
    rows = list(rows)
    if not rows:
        return 0
    degree = len(rows[0])
    best = 0
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            d = distance(rows[i], rows[j])
            if d > best:
                best = d
                if best == degree:
                    return best
    return best


def radius_from(center: Sequence[Hashable], rows: Iterable[Sequence[Hashable]]) -> int:
    """Maximum distance from *center* to any row (used by ball covers)."""
    return max((distance(center, row) for row in rows), default=0)


def disagreeing_coordinates(rows: Sequence[Sequence[Hashable]]) -> list[int]:
    """Coordinates on which the group does not unanimously agree.

    These are exactly the coordinates a suppressor must star in every
    member to render the group textually identical.
    """
    rows = list(rows)
    if not rows:
        return []
    degree = len(rows[0])
    first = rows[0]
    return [
        j
        for j in range(degree)
        if any(row[j] != first[j] for row in rows[1:])
    ]


def group_image(rows: Sequence[Sequence[Hashable]]) -> Row:
    """The common anonymized vector of a group under minimal suppression.

    Agreeing coordinates keep their value; disagreeing ones become
    :data:`~repro.core.alphabet.STAR`.

    >>> group_image([(1, 0, 1, 0), (1, 1, 1, 0)])
    (1, *, 1, 0)
    """
    rows = list(rows)
    if not rows:
        raise ValueError("a group image needs at least one vector")
    starred = set(disagreeing_coordinates(rows))
    return tuple(
        STAR if j in starred else value for j, value in enumerate(rows[0])
    )


def anon_cost(rows: Sequence[Sequence[Hashable]]) -> int:
    """``ANON(S)``: cells that must be starred to make the group identical.

    Equals ``|S|`` times the number of disagreeing coordinates — optimal,
    because a disagreeing coordinate must be starred in every member and
    an agreeing one need not be starred at all.
    """
    rows = list(rows)
    return len(rows) * len(disagreeing_coordinates(rows))


# ----------------------------------------------------------------------
# Index-set variants (groups as sets of row indices into a table)
#
# These delegate to the table's shared DistanceBackend
# (:mod:`repro.core.backend`), so repeated queries about the same group
# hit the backend's memo and the REPRO_BACKEND env var picks the
# implementation.  Pass ``backend=`` to pin one explicitly.
# ----------------------------------------------------------------------


def group_rows(table, indices: Iterable[int]) -> list[Row]:
    """Materialize the rows of a group given by table-row indices."""
    rows = table.rows
    return [rows[i] for i in indices]


def diameter_of(table, indices: Iterable[int], backend=None) -> int:
    """``d(S)`` for a group of row indices of *table*."""
    from repro.core.backend import get_backend

    return get_backend(table, backend).diameter(indices)


def anon_cost_of(table, indices: Iterable[int], backend=None) -> int:
    """``ANON(S)`` for a group of row indices of *table*."""
    from repro.core.backend import get_backend

    return get_backend(table, backend).anon_cost(indices)


def group_image_of(table, indices: Iterable[int], backend=None) -> Row:
    """Anonymized common image for a group of row indices of *table*."""
    from repro.core.backend import get_backend

    return get_backend(table, backend).group_image(indices)


def pairwise_distance_matrix(table) -> list[list[int]]:
    """The full ``n x n`` distance matrix of a table's rows.

    Plain Python lists; for heavy numeric workloads prefer the backend
    layer's cached ``get_backend(table).distance_matrix()``.
    """
    rows = table.rows
    n = len(rows)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = distance(rows[i], rows[j])
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def fast_pairwise_distance_matrix(table) -> list[list[int]]:
    """Deprecated shim over the backend layer's cached distance matrix.

    Historically this did a per-row numpy loop over
    ``(encoded != encoded[i]).sum(axis=1)``; the chunked-broadcast
    implementation now lives in
    :meth:`repro.core.backend.NumpyBackend.matrix_array`.  Call
    ``get_backend(table).distance_matrix()`` instead — this wrapper only
    survives for older callers and will be removed.
    """
    import warnings

    warnings.warn(
        "fast_pairwise_distance_matrix is deprecated; use "
        "repro.core.backend.get_backend(table).distance_matrix()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.backend import get_backend

    return get_backend(table).distance_matrix()


def is_consistent_suppression(original: Sequence[Hashable],
                              anonymized: Sequence[Hashable]) -> bool:
    """True iff *anonymized* is *original* with some cells starred.

    This is the per-vector condition ``t(v)[j] in {v[j], *}`` of
    Definition 2.1.
    """
    if len(original) != len(anonymized):
        return False
    return all(b is STAR or a == b for a, b in zip(original, anonymized))
