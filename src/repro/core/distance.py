"""Distances, diameters, and the ANON cost (Definition 4.1 and Section 4.1).

* ``distance(u, v)`` — the number of coordinates where ``u`` and ``v``
  differ; a metric on ``Sigma^m`` (the Hamming distance for categorical
  vectors).
* ``diameter(S)`` — the maximum pairwise distance within a group.
* ``anon_cost(S)`` (paper: ``ANON(S)``) — the total number of cells that
  must be suppressed to make all vectors of ``S`` textually identical.

The key structural facts used throughout the paper, all of which the test
suite checks, are:

* ``anon_cost(S) == |S| * |disagreeing_coordinates(S)|`` — a coordinate
  either agrees across the whole group and survives, or disagrees
  somewhere and must be starred in *every* member.
* ``diameter(S) <= |disagreeing_coordinates(S)| <= (|S|-1) * diameter(S)``
  — which yields Lemma 4.1's sandwich between optimal anonymity cost and
  minimum diameter sums.
* the triangle inequality on diameters of overlapping sets (Figure 1):
  ``diameter(S1 | S2) <= diameter(S1) + diameter(S2)`` when they share a
  vector.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.core.alphabet import STAR

Row = tuple[Hashable, ...]


def distance(u: Sequence[Hashable], v: Sequence[Hashable]) -> int:
    """Number of coordinates in which *u* and *v* differ (Definition 4.1).

    >>> distance((1, 0, 1, 0), (0, 1, 1, 0))
    2
    """
    if len(u) != len(v):
        raise ValueError(f"vectors of degrees {len(u)} and {len(v)} are incomparable")
    return sum(1 for a, b in zip(u, v) if a != b)


def differing_coordinates(u: Sequence[Hashable], v: Sequence[Hashable]) -> list[int]:
    """The coordinate positions where *u* and *v* differ."""
    if len(u) != len(v):
        raise ValueError(f"vectors of degrees {len(u)} and {len(v)} are incomparable")
    return [j for j, (a, b) in enumerate(zip(u, v)) if a != b]


def diameter(rows: Sequence[Sequence[Hashable]]) -> int:
    """Maximum pairwise distance within the group (the paper's ``d(S)``).

    Empty and singleton groups have diameter 0.
    """
    rows = list(rows)
    best = 0
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            d = distance(rows[i], rows[j])
            if d > best:
                best = d
    return best


def radius_from(center: Sequence[Hashable], rows: Iterable[Sequence[Hashable]]) -> int:
    """Maximum distance from *center* to any row (used by ball covers)."""
    return max((distance(center, row) for row in rows), default=0)


def disagreeing_coordinates(rows: Sequence[Sequence[Hashable]]) -> list[int]:
    """Coordinates on which the group does not unanimously agree.

    These are exactly the coordinates a suppressor must star in every
    member to render the group textually identical.
    """
    rows = list(rows)
    if not rows:
        return []
    degree = len(rows[0])
    first = rows[0]
    return [
        j
        for j in range(degree)
        if any(row[j] != first[j] for row in rows[1:])
    ]


def group_image(rows: Sequence[Sequence[Hashable]]) -> Row:
    """The common anonymized vector of a group under minimal suppression.

    Agreeing coordinates keep their value; disagreeing ones become
    :data:`~repro.core.alphabet.STAR`.

    >>> group_image([(1, 0, 1, 0), (1, 1, 1, 0)])
    (1, *, 1, 0)
    """
    rows = list(rows)
    if not rows:
        raise ValueError("a group image needs at least one vector")
    starred = set(disagreeing_coordinates(rows))
    return tuple(
        STAR if j in starred else value for j, value in enumerate(rows[0])
    )


def anon_cost(rows: Sequence[Sequence[Hashable]]) -> int:
    """``ANON(S)``: cells that must be starred to make the group identical.

    Equals ``|S|`` times the number of disagreeing coordinates — optimal,
    because a disagreeing coordinate must be starred in every member and
    an agreeing one need not be starred at all.
    """
    rows = list(rows)
    return len(rows) * len(disagreeing_coordinates(rows))


# ----------------------------------------------------------------------
# Index-set variants (groups as sets of row indices into a table)
# ----------------------------------------------------------------------


def group_rows(table, indices: Iterable[int]) -> list[Row]:
    """Materialize the rows of a group given by table-row indices."""
    rows = table.rows
    return [rows[i] for i in indices]


def diameter_of(table, indices: Iterable[int]) -> int:
    """``d(S)`` for a group of row indices of *table*."""
    return diameter(group_rows(table, indices))


def anon_cost_of(table, indices: Iterable[int]) -> int:
    """``ANON(S)`` for a group of row indices of *table*."""
    return anon_cost(group_rows(table, indices))


def group_image_of(table, indices: Iterable[int]) -> Row:
    """Anonymized common image for a group of row indices of *table*."""
    return group_image(group_rows(table, indices))


def pairwise_distance_matrix(table) -> list[list[int]]:
    """The full ``n x n`` distance matrix of a table's rows.

    Plain Python lists; for heavy numeric workloads prefer
    :func:`fast_pairwise_distance_matrix`.
    """
    rows = table.rows
    n = len(rows)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = distance(rows[i], rows[j])
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def fast_pairwise_distance_matrix(table) -> list[list[int]]:
    """Like :func:`pairwise_distance_matrix`, vectorized via numpy when
    the table is star-free (integer-encoding each attribute); falls back
    to the pure-Python version otherwise.  Always returns plain lists
    with identical values (property-tested)."""
    for row in table.rows:
        if any(cell is STAR for cell in row):
            return pairwise_distance_matrix(table)
    if table.n_rows == 0 or table.degree == 0:
        return pairwise_distance_matrix(table)
    import numpy as np

    from repro.core.table import rows_as_int_array

    encoded = rows_as_int_array(table)
    n = encoded.shape[0]
    matrix = np.empty((n, n), dtype=np.int64)
    for i in range(n):
        matrix[i] = (encoded != encoded[i]).sum(axis=1)
    return matrix.tolist()


def is_consistent_suppression(original: Sequence[Hashable],
                              anonymized: Sequence[Hashable]) -> bool:
    """True iff *anonymized* is *original* with some cells starred.

    This is the per-vector condition ``t(v)[j] in {v[j], *}`` of
    Definition 2.1.
    """
    if len(original) != len(anonymized):
        return False
    return all(b is STAR or a == b for a, b in zip(original, anonymized))
