"""Relations (tables) of degree-m records.

The paper's databases are sets of m-dimensional vectors ``V`` over a
finite alphabet, treated as *multisets* once anonymized ("we will regard
t(V) as a multiset when two or more vectors map to the same suppressed
vector").  :class:`Table` therefore keeps rows in a list — duplicates are
allowed and meaningful — with optional attribute names for readability.

Tables are immutable: all "modifying" operations return new tables.
"""

from __future__ import annotations

import csv
import io
from collections import Counter
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Any

from repro.core.alphabet import STAR, Alphabet, infer_alphabets

Row = tuple[Hashable, ...]

_STAR_TOKEN = "*"


class Table:
    """An ordered multiset of equal-degree records.

    :param rows: the records; each is coerced to a tuple.
    :param attributes: optional column names; defaults to ``a0..a{m-1}``.

    >>> t = Table([("Harry", 34), ("Beatrice", 47)], attributes=["first", "age"])
    >>> t.n_rows, t.degree
    (2, 2)
    >>> t[0]
    ('Harry', 34)
    """

    __slots__ = ("_rows", "_attributes", "__weakref__")

    def __init__(
        self,
        rows: Iterable[Sequence[Hashable]],
        attributes: Sequence[str] | None = None,
    ):
        coerced = [tuple(row) for row in rows]
        if coerced:
            degree = len(coerced[0])
            for i, row in enumerate(coerced):
                if len(row) != degree:
                    raise ValueError(
                        f"row {i} has degree {len(row)}, expected {degree}"
                    )
        else:
            degree = len(attributes) if attributes is not None else 0
        if attributes is None:
            attributes = [f"a{j}" for j in range(degree)]
        else:
            attributes = list(attributes)
            if len(attributes) != degree and coerced:
                raise ValueError(
                    f"{len(attributes)} attribute names for degree-{degree} rows"
                )
            if len(set(attributes)) != len(attributes):
                raise ValueError("attribute names must be unique")
        self._rows: tuple[Row, ...] = tuple(coerced)
        self._attributes: tuple[str, ...] = tuple(attributes)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, Hashable]],
        attributes: Sequence[str] | None = None,
    ) -> "Table":
        """Build a table from dict records.

        Column order follows *attributes* if given, else the key order of
        the first record.
        """
        records = list(records)
        if attributes is None:
            if not records:
                raise ValueError("need attributes to build an empty table from dicts")
            attributes = list(records[0].keys())
        rows = [tuple(record[name] for name in attributes) for record in records]
        return cls(rows, attributes=attributes)

    @classmethod
    def from_csv(
        cls,
        text_or_file: str | io.TextIOBase,
        header: bool = True,
        star_token: str = _STAR_TOKEN,
    ) -> "Table":
        """Parse a table from CSV text or a file object.

        Cells equal to *star_token* become the suppression symbol.
        All values are kept as strings; callers needing typed columns
        should convert afterwards.
        """
        if isinstance(text_or_file, str):
            handle: io.TextIOBase = io.StringIO(text_or_file)
        else:
            handle = text_or_file
        reader = csv.reader(handle)
        lines = [line for line in reader if line]
        if not lines:
            raise ValueError("empty CSV input")
        attributes: Sequence[str] | None
        if header:
            attributes = lines[0]
            body = lines[1:]
        else:
            attributes = None
            body = lines
        rows = [
            tuple(STAR if cell == star_token else cell for cell in line)
            for line in body
        ]
        return cls(rows, attributes=attributes)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def rows(self) -> tuple[Row, ...]:
        """All records, in order."""
        return self._rows

    @property
    def attributes(self) -> tuple[str, ...]:
        """Column names."""
        return self._attributes

    @property
    def n_rows(self) -> int:
        """Number of records (``|V|`` counting multiplicity)."""
        return len(self._rows)

    @property
    def degree(self) -> int:
        """Degree ``m`` of the relation (number of attributes)."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def column(self, attribute: str | int) -> tuple[Hashable, ...]:
        """All values of one column, by name or position."""
        j = attribute if isinstance(attribute, int) else self.attribute_index(attribute)
        return tuple(row[j] for row in self._rows)

    def attribute_index(self, name: str) -> int:
        """Position of the named attribute."""
        try:
            return self._attributes.index(name)
        except ValueError:
            raise KeyError(f"no attribute named {name!r}") from None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def project(self, attributes: Sequence[str | int]) -> "Table":
        """Project onto the given attributes (names or positions)."""
        indices = [
            a if isinstance(a, int) else self.attribute_index(a) for a in attributes
        ]
        names = [self._attributes[j] for j in indices]
        rows = [tuple(row[j] for j in indices) for row in self._rows]
        return Table(rows, attributes=names)

    def select_rows(self, indices: Iterable[int]) -> "Table":
        """A new table with only the rows at *indices* (in the given order)."""
        return Table([self._rows[i] for i in indices], attributes=self._attributes)

    def with_rows(self, rows: Iterable[Sequence[Hashable]]) -> "Table":
        """Same schema, different rows."""
        return Table(rows, attributes=self._attributes)

    def row_multiset(self) -> Counter:
        """Multiplicity of each distinct record."""
        return Counter(self._rows)

    def distinct_rows(self) -> tuple[Row, ...]:
        """Distinct records in first-appearance order."""
        seen: dict[Row, None] = {}
        for row in self._rows:
            seen.setdefault(row)
        return tuple(seen)

    def alphabets(self) -> list[Alphabet]:
        """Per-attribute alphabets inferred from the data (stars skipped)."""
        return infer_alphabets(self._rows)

    def total_cells(self) -> int:
        """``n * m`` — the number of cells in the relation."""
        return self.n_rows * self.degree

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_csv(self, header: bool = True, star_token: str = _STAR_TOKEN) -> str:
        """Serialize to CSV text; suppressed cells become *star_token*."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        if header:
            writer.writerow(self._attributes)
        for row in self._rows:
            writer.writerow([star_token if cell is STAR else cell for cell in row])
        return buffer.getvalue()

    def pretty(self, max_rows: int = 30) -> str:
        """A fixed-width text rendering for logs and examples."""
        shown = self._rows[:max_rows]
        cells = [list(self._attributes)] + [
            ["*" if value is STAR else str(value) for value in row] for row in shown
        ]
        widths = [
            max(len(line[j]) for line in cells) for j in range(len(self._attributes))
        ] if self._attributes else []
        lines = ["  ".join(line[j].ljust(widths[j]) for j in range(len(line)))
                 for line in cells]
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Equality & repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._rows == other._rows and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._rows, self._attributes))

    def __repr__(self) -> str:
        return f"Table(n_rows={self.n_rows}, degree={self.degree})"


def rows_as_int_array(table: Table) -> "Any":
    """Encode a star-free table as a compact ``numpy`` integer array.

    Each attribute's values are mapped to ``0..|Sigma_j|-1`` in alphabet
    order.  Useful for vectorized distance computations in benchmarks.

    :raises ValueError: if the table contains suppressed cells.
    """
    import numpy as np

    for row in table.rows:
        if any(cell is STAR for cell in row):
            raise ValueError("cannot integer-encode a table with suppressed cells")
    alphabets = table.alphabets()
    encoded = np.empty((table.n_rows, table.degree), dtype=np.int64)
    for i, row in enumerate(table.rows):
        for j, cell in enumerate(row):
            encoded[i, j] = alphabets[j].index(cell)
    return encoded
