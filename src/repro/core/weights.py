"""Weighted suppression: not all cells are equally valuable.

The paper minimizes the *count* of suppressed cells; a natural library
extension weights attribute ``j`` by ``w_j > 0`` (withholding a rare
diagnosis code may cost more utility than withholding a zip digit) and
minimizes total suppressed weight.  All of Section 4's structure
survives: a group still stars exactly its disagreeing coordinates, so

    WANON(S) = |S| * sum of w_j over disagreeing coordinates j,

and the subset-DP exactness argument is unchanged (splitting a group
still never increases cost, weightedly).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.alphabet import STAR
from repro.core.distance import disagreeing_coordinates
from repro.core.partition import Partition
from repro.core.table import Table


def check_weights(weights: Sequence[float], degree: int) -> tuple[float, ...]:
    """Validate per-attribute weights (positive, one per attribute)."""
    weights = tuple(float(w) for w in weights)
    if len(weights) != degree:
        raise ValueError(f"{len(weights)} weights for degree {degree}")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be strictly positive")
    return weights


def weighted_anon_cost(rows: Sequence, weights: Sequence[float]) -> float:
    """``WANON(S)``: weighted cost of making the group identical."""
    rows = list(rows)
    if not rows:
        return 0.0
    weights = check_weights(weights, len(rows[0]))
    return len(rows) * sum(weights[j] for j in disagreeing_coordinates(rows))


def weighted_star_cost(table: Table, weights: Sequence[float]) -> float:
    """Total weighted suppression in a released table."""
    weights = check_weights(weights, table.degree)
    return sum(
        weights[j]
        for row in table.rows
        for j, value in enumerate(row)
        if value is STAR
    )


def optimal_weighted_anonymization(
    table: Table,
    k: int,
    weights: Sequence[float],
) -> tuple[float, Partition]:
    """Exact minimum-weight k-anonymization (subset DP, small n only).

    Delegates to the shared engine
    :func:`repro.algorithms.partition_dp.minimum_cost_partition`; with
    unit weights it agrees exactly with
    :func:`repro.algorithms.exact.optimal_anonymization` (the test
    suite cross-checks this).
    """
    from repro.algorithms.partition_dp import minimum_cost_partition

    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    weights = check_weights(weights, table.degree)
    if n == 0:
        return 0.0, Partition([], 0, k)
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows

    def group_cost(members: tuple[int, ...]) -> float:
        vectors = [rows[i] for i in members]
        return len(vectors) * sum(
            weights[j] for j in disagreeing_coordinates(vectors)
        )

    opt, groups = minimum_cost_partition(n, k, group_cost)
    return float(opt), Partition(groups, n, k, k_max=min(2 * k - 1, n))


def weighted_cluster_partition(
    table: Table,
    k: int,
    weights: Sequence[float],
) -> Partition:
    """Greedy weighted clustering (the k-member heuristic, weighted).

    Polynomial-time companion to the exact DP: grow clusters one record
    at a time, always adding the record with the smallest weighted-cost
    increase.
    """
    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    weights = check_weights(weights, table.degree)
    if n == 0:
        return Partition([], 0, k)
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows

    def cost(members: list[int]) -> float:
        vectors = [rows[i] for i in members]
        return len(vectors) * sum(
            weights[j] for j in disagreeing_coordinates(vectors)
        )

    unassigned = set(range(n))
    clusters: list[list[int]] = []
    while len(unassigned) >= k:
        seed = min(unassigned)
        cluster = [seed]
        unassigned.remove(seed)
        while len(cluster) < k:
            best = min(
                unassigned, key=lambda i: (cost(cluster + [i]), i)
            )
            cluster.append(best)
            unassigned.remove(best)
        clusters.append(cluster)
    for leftover in sorted(unassigned):
        target = min(
            range(len(clusters)),
            key=lambda c: (
                cost(clusters[c] + [leftover]) - cost(clusters[c]), c
            ),
        )
        clusters[target].append(leftover)
    k_max = max([2 * k - 1] + [len(c) for c in clusters])
    return Partition([frozenset(c) for c in clusters], n, k, k_max=k_max)
