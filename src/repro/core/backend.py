"""Unified distance backends: one fast metric substrate for every algorithm.

Every algorithm in this reproduction — greedy cover (Theorem 4.1), the
center/ball algorithm (Theorem 4.2), local search, annealing, the exact
solvers — bottoms out in the same primitives: ``distance``, ``diameter``,
``disagreeing_coordinates``, ``anon_cost``, ``group_image``.  This module
gives those primitives a single pluggable home:

* :class:`EncodedTable` — a table's rows integer-encoded per attribute
  and packed into the narrowest numpy integer dtype that fits, built at
  most once per table (shared through :func:`encode_table`'s weakref
  cache).  Suppressed cells are encoded like any other symbol (``STAR``
  equals only itself, so code equality coincides with value equality).
  Columns whose post-encoding alphabet is binary — including
  ``STAR``-augmented columns that still fit two symbols — can further be
  packed ~64 per ``uint64`` lane (:meth:`EncodedTable.pack`), with the
  remaining wide columns kept in a residual integer-code matrix.
* :class:`DistanceBackend` — the protocol: index-level distance,
  a cached pairwise distance matrix (computed lazily in row blocks),
  per-row lazy distance rows (``distance_row``), a radius-bucketed
  candidate index (``neighbor_order`` / ``neighbors_within``) for ball
  enumeration, memoized group statistics (``diameter`` / ``anon_cost``
  / ``group_image`` keyed on frozen index sets), and incremental
  per-group statistics (:class:`MutableGroupStats`).
* :class:`PythonBackend` — current semantics, zero dependencies; the
  reference oracle for the parity suite.
* :class:`NumpyBackend` — vectorized broadcast distance matrix and
  vectorized group reductions over index arrays.
* :class:`BitpackedBackend` — Hamming distances via XOR + popcount over
  the ``uint64`` lanes plus a fallback compare over the residual wide
  columns; the fastest kernel for wide binary tables (the Theorem 3.2
  regime).

Backend selection: the ``REPRO_BACKEND`` environment variable
(``python``, ``numpy``, or ``bitpacked``) picks the default for the
whole process; unset, the numpy backend is used whenever numpy imports.
Every :class:`~repro.algorithms.base.Anonymizer` also accepts an
explicit ``backend=`` argument (a name or a backend instance).

All backends are bit-identical on every primitive — property-tested in
``tests/test_backend_parity.py``.
"""

from __future__ import annotations

import abc
import os
import weakref
from bisect import bisect_right
from collections.abc import Hashable, Iterable, Sequence
from typing import Any

from repro.core.alphabet import STAR
from repro.core.distance import (
    diameter as _rows_diameter,
    disagreeing_coordinates as _rows_disagreeing,
    distance as _rows_distance,
)

Row = tuple[Hashable, ...]

#: entries per broadcast chunk when filling the distance matrix; bounds
#: the temporary ``(block, n, m)`` comparison array to ~tens of MB.
_CHUNK_CELLS = 4_000_000


def numpy_available() -> bool:
    """True iff numpy imports in this environment."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships with the package
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`make_backend` here and now."""
    names = ["python"]
    if numpy_available():
        names.extend(["numpy", "bitpacked"])
    return tuple(names)


def default_backend_name() -> str:
    """The process-wide default: ``$REPRO_BACKEND``, else numpy if present.

    :raises ValueError: if ``REPRO_BACKEND`` names an unknown backend.
    """
    name = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if name:
        if name not in ("python", "numpy", "bitpacked"):
            raise ValueError(
                f"REPRO_BACKEND={name!r}: expected 'python', 'numpy', "
                f"or 'bitpacked'"
            )
        if name != "python" and not numpy_available():  # pragma: no cover
            raise ValueError(
                f"REPRO_BACKEND={name} but numpy is not importable"
            )
        return name
    return "numpy" if numpy_available() else "python"


# ----------------------------------------------------------------------
# Encoded tables
# ----------------------------------------------------------------------


class EncodedTable:
    """A table's rows as a compact per-attribute integer code matrix.

    Codes are assigned in first-appearance order, column by column;
    ``STAR`` receives an ordinary code (it equals only itself, so code
    equality is exactly value equality).  The code matrix is packed into
    the narrowest unsigned dtype that holds the largest code, which
    keeps the broadcast distance computation memory-bandwidth friendly.

    On top of the code matrix, :meth:`pack` derives (lazily, once) a
    *bit-packed* view for :class:`BitpackedBackend`: every column whose
    post-encoding alphabet has at most two symbols — genuinely binary
    data, constant columns, and ``STAR``-augmented columns that still
    fit — contributes one bit, ~64 columns per ``uint64`` lane, while
    the remaining wide columns stay behind in a residual code matrix.
    """

    __slots__ = (
        "codes", "decoders", "n_rows", "degree",
        "_lanes", "_wide_codes", "_binary_columns", "_wide_columns",
    )

    def __init__(self, table):
        import numpy as np

        n, m = table.n_rows, table.degree
        encoders: list[dict[Hashable, int]] = [{} for _ in range(m)]
        codes = np.zeros((n, m), dtype=np.int64)
        for i, row in enumerate(table.rows):
            for j, cell in enumerate(row):
                encoder = encoders[j]
                code = encoder.get(cell, -1)
                if code < 0:
                    code = len(encoder)
                    encoder[cell] = code
                codes[i, j] = code
        max_code = int(codes.max()) if n and m else 0
        if max_code < 2 ** 8:
            dtype = np.uint8
        elif max_code < 2 ** 16:
            dtype = np.uint16
        else:  # pragma: no cover - needs > 65536 distinct values per column
            dtype = np.int64
        self.codes = codes.astype(dtype)
        self.decoders: tuple[tuple[Hashable, ...], ...] = tuple(
            tuple(encoder) for encoder in encoders
        )
        self.n_rows = n
        self.degree = m
        self._lanes: Any = None
        self._wide_codes: Any = None
        self._binary_columns: tuple[int, ...] | None = None
        self._wide_columns: tuple[int, ...] | None = None

    def decode(self, j: int, code: int) -> Hashable:
        """The original attribute value behind column *j*'s *code*."""
        return self.decoders[j][code]

    # -- bit-packed lane view (built lazily, at most once) -------------

    def pack(self) -> tuple[Any, Any]:
        """``(lanes, wide_codes)``: the bit-packed view of the table.

        ``lanes`` is an ``(n_rows, n_lanes) uint64`` array holding one
        bit per binary column (codes are 0/1 by first-appearance
        construction); ``wide_codes`` is the ``(n_rows, n_wide)``
        residual code matrix of the columns with three or more symbols.
        Hamming distance decomposes exactly as ``popcount(lanes[i] ^
        lanes[j]) + count(wide_codes[i] != wide_codes[j])``.
        """
        if self._lanes is None:
            import numpy as np

            codes = self.codes
            binary = tuple(
                j for j, decoder in enumerate(self.decoders)
                if len(decoder) <= 2
            )
            wide = tuple(
                j for j, decoder in enumerate(self.decoders)
                if len(decoder) > 2
            )
            n_lanes = (len(binary) + 63) // 64
            lanes = np.zeros((self.n_rows, n_lanes), dtype=np.uint64)
            if self.n_rows and binary:
                bits = codes[:, list(binary)].astype(np.uint64)
                for t in range(len(binary)):
                    lanes[:, t >> 6] |= bits[:, t] << np.uint64(t & 63)
            self._lanes = lanes
            self._wide_codes = np.ascontiguousarray(codes[:, list(wide)])
            self._binary_columns = binary
            self._wide_columns = wide
        return self._lanes, self._wide_codes

    @property
    def binary_columns(self) -> tuple[int, ...]:
        """Columns packed into the ``uint64`` lanes (``<= 2`` symbols)."""
        self.pack()
        assert self._binary_columns is not None
        return self._binary_columns

    @property
    def wide_columns(self) -> tuple[int, ...]:
        """Columns kept in the residual code matrix (``>= 3`` symbols)."""
        self.pack()
        assert self._wide_columns is not None
        return self._wide_columns


#: id(table) -> EncodedTable; entries evicted when the table is garbage
#: collected, so a table is encoded at most once no matter how many
#: backend instances are built over it.
_ENCODED_CACHE: dict[int, EncodedTable] = {}


def encode_table(table) -> EncodedTable:
    """The shared :class:`EncodedTable` of *table* (encoded at most once).

    Every numpy-family backend instance over the same table object —
    cached or fresh, ``numpy`` or ``bitpacked`` — resolves to the same
    encoding, so the O(n·m) Python encode loop and the bit-packing pass
    are paid once per table, not once per backend.
    """
    key = id(table)
    encoded = _ENCODED_CACHE.get(key)
    if encoded is None:
        encoded = EncodedTable(table)
        _ENCODED_CACHE[key] = encoded
        try:
            weakref.finalize(table, _ENCODED_CACHE.pop, key, None)
        except TypeError:  # pragma: no cover - non-weakrefable stand-in
            pass
    return encoded


# ----------------------------------------------------------------------
# Incremental per-group statistics
# ----------------------------------------------------------------------


class MutableGroupStats:
    """Incrementally maintained ANON statistics of one mutable group.

    Tracks, per column, the multiset of member values, the number of
    columns with more than one distinct value (the disagreeing
    coordinates), and hence ``cost = |S| * |disagreeing|`` — with O(m)
    updates when the group gains or loses one row, and O(m)
    *non-mutating* what-if queries (``cost_if_add`` / ``cost_if_remove``
    / ``cost_if_swap``).  This is what lets local search and annealing
    evaluate a move without recomputing any group from scratch.
    """

    __slots__ = ("_backend", "_rows", "_members", "_counts", "_disagree")

    def __init__(self, backend: "DistanceBackend", members: Iterable[int] = ()):
        self._backend = backend
        self._rows = backend.table.rows
        self._members: set[int] = set()
        self._counts: list[dict[Hashable, int]] = [
            {} for _ in range(backend.table.degree)
        ]
        self._disagree = 0
        for i in members:
            self.add(i)

    # -- views ---------------------------------------------------------

    @property
    def members(self) -> frozenset[int]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, i: int) -> bool:
        return i in self._members

    @property
    def n_disagreeing(self) -> int:
        """Number of coordinates the group does not unanimously agree on."""
        return self._disagree

    @property
    def cost(self) -> int:
        """``ANON(S) = |S| * |disagreeing coordinates|`` right now."""
        return len(self._members) * self._disagree

    # -- mutation ------------------------------------------------------

    def add(self, i: int) -> None:
        """Add row *i* to the group (O(m))."""
        if i in self._members:
            raise ValueError(f"row {i} already in group")
        self._members.add(i)
        for j, value in enumerate(self._rows[i]):
            counts = self._counts[j]
            before = len(counts)
            counts[value] = counts.get(value, 0) + 1
            if before == 1 and len(counts) == 2:
                self._disagree += 1
        self._backend.counters["incremental_updates"] += 1

    def remove(self, i: int) -> None:
        """Remove row *i* from the group (O(m))."""
        if i not in self._members:
            raise ValueError(f"row {i} not in group")
        self._members.remove(i)
        for j, value in enumerate(self._rows[i]):
            counts = self._counts[j]
            count = counts[value]
            if count == 1:
                del counts[value]
                if len(counts) == 1:
                    self._disagree -= 1
            else:
                counts[value] = count - 1
        self._backend.counters["incremental_updates"] += 1

    # -- what-if queries (no mutation) ---------------------------------

    def cost_if_add(self, i: int) -> int:
        """``ANON(S + {i})`` without mutating the group (O(m))."""
        disagree = 0
        for j, value in enumerate(self._rows[i]):
            counts = self._counts[j]
            distinct = len(counts)
            if distinct > 1 or (distinct == 1 and value not in counts):
                disagree += 1
        self._backend.counters["incremental_updates"] += 1
        return (len(self._members) + 1) * disagree

    def cost_if_remove(self, i: int) -> int:
        """``ANON(S - {i})`` without mutating the group (O(m))."""
        if i not in self._members:
            raise ValueError(f"row {i} not in group")
        disagree = 0
        for j, value in enumerate(self._rows[i]):
            counts = self._counts[j]
            distinct = len(counts)
            if counts[value] == 1:
                distinct -= 1
            if distinct > 1:
                disagree += 1
        self._backend.counters["incremental_updates"] += 1
        return (len(self._members) - 1) * disagree

    def cost_if_swap(self, out_i: int, in_i: int) -> int:
        """``ANON(S - {out_i} + {in_i})`` without mutating (O(m))."""
        if out_i not in self._members:
            raise ValueError(f"row {out_i} not in group")
        if out_i == in_i:
            return self.cost
        out_row = self._rows[out_i]
        in_row = self._rows[in_i]
        disagree = 0
        for j in range(len(out_row)):
            counts = self._counts[j]
            out_value, in_value = out_row[j], in_row[j]
            distinct = len(counts)
            remaining_out = counts[out_value] - 1
            if remaining_out == 0:
                distinct -= 1
            in_count = counts.get(in_value, 0)
            if in_value == out_value:
                in_count = remaining_out
            if in_count == 0:
                distinct += 1
            if distinct > 1:
                disagree += 1
        self._backend.counters["incremental_updates"] += 1
        return len(self._members) * disagree


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------


class DistanceBackend(abc.ABC):
    """Shared metric substrate of one table.

    All group-level queries are memoized on the frozen index set, so any
    two algorithms (or one algorithm's phases) asking about the same
    group share the work.  ``counters`` tracks how the work was done —
    ``full_group_scans`` (from-scratch group computations),
    ``incremental_updates`` (O(m) :class:`MutableGroupStats` steps),
    ``memo_hits``, ``matrix_rows`` (distance-matrix rows computed,
    whether block-filled or lazily one row at a time),
    ``neighbor_orders`` (radius-bucketed per-row indices built), and
    ``neighbor_queries`` (O(log n) ``neighbors_within`` lookups) —
    which the tests use to assert that the metaheuristics really run on
    the incremental path and that ball enumeration no longer rescans
    all rows per (center, radius) pair.
    """

    #: short machine-readable identifier, overridden by subclasses
    name: str = "abstract"

    def __init__(self, table):
        self.table = table
        self.counters: dict[str, int] = {
            "full_group_scans": 0,
            "incremental_updates": 0,
            "memo_hits": 0,
            "matrix_rows": 0,
            "neighbor_orders": 0,
            "neighbor_queries": 0,
        }
        self._matrix: list[list[int]] | None = None
        self._row_memo: dict[int, list[int]] = {}
        self._neighbor_memo: dict[
            int, tuple[tuple[int, ...], tuple[int, ...]]
        ] = {}
        self._diameter_memo: dict[frozenset[int], int] = {}
        self._disagree_memo: dict[frozenset[int], tuple[int, ...]] = {}

    # -- abstract computational kernels --------------------------------

    @abc.abstractmethod
    def distance(self, i: int, j: int) -> int:
        """Hamming distance between rows *i* and *j* of the table."""

    @abc.abstractmethod
    def _compute_matrix(self) -> list[list[int]]:
        """The full n x n distance matrix as plain nested lists."""

    @abc.abstractmethod
    def _compute_diameter(self, indices: tuple[int, ...]) -> int:
        """Max pairwise distance within the (>= 2 member) group."""

    @abc.abstractmethod
    def _compute_disagreeing(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        """Columns on which the (non-empty) group does not agree."""

    # -- shared memoized API -------------------------------------------

    def distance_matrix(self) -> list[list[int]]:
        """The full pairwise distance matrix, computed once and cached.

        Plain nested lists of plain ints, identical across backends.
        """
        if self._matrix is None:
            self._matrix = self._compute_matrix()
            self.counters["matrix_rows"] += len(self._matrix)
        return self._matrix

    def distance_row(self, i: int) -> list[int]:
        """Row *i* of the distance matrix, computed lazily and cached.

        Algorithms that touch only some rows (or one row at a time)
        should prefer this over :meth:`distance_matrix`: it never
        materializes the full ``n x n`` nested-list matrix, and each row
        is computed at most once (served from the full matrix when that
        has already been built).  The returned list is shared — treat it
        as read-only.
        """
        if self._matrix is not None:
            return self._matrix[i]
        row = self._row_memo.get(i)
        if row is None:
            row = self._compute_distance_row(i)
            self._row_memo[i] = row
            self.counters["matrix_rows"] += 1
        return row

    def _compute_distance_row(self, i: int) -> list[int]:
        """One row of distances; subclasses override with a fast path."""
        return [self.distance(i, j) for j in range(self.table.n_rows)]

    # -- radius-bucketed candidate index -------------------------------

    def neighbor_order(
        self, center: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(order, dists)``: all rows bucketed by distance to *center*.

        ``order`` lists every row index sorted by ``(distance, index)``
        and ``dists`` the matching non-decreasing distances, so
        ``order[:p]`` is exactly the ball ``S_{center, dists[p-1]}``
        whenever ``p`` sits on a distance boundary.  Built once per
        center (memoized) from one lazy distance row — ball enumeration
        never rescans all rows per (center, radius) pair.
        """
        cached = self._neighbor_memo.get(center)
        if cached is not None:
            self.counters["memo_hits"] += 1
            return cached
        row = self.distance_row(center)
        order = sorted(range(self.table.n_rows), key=lambda v: (row[v], v))
        entry = (tuple(order), tuple(row[v] for v in order))
        self._neighbor_memo[center] = entry
        self.counters["neighbor_orders"] += 1
        return entry

    def neighbors_within(self, center: int, r: int) -> list[int]:
        """Rows within distance *r* of row *center* (a ball's members).

        Sorted by ``(distance, index)``; answered with one binary
        search over the center's sorted distance buckets, so dominated
        balls are never materialized and repeated radius queries cost
        O(log n) after the first.
        """
        order, dists = self.neighbor_order(center)
        self.counters["neighbor_queries"] += 1
        return list(order[:bisect_right(dists, r)])

    def diameter(self, indices: Iterable[int]) -> int:
        """``d(S)`` for a group of row indices (memoized)."""
        key = frozenset(indices)
        cached = self._diameter_memo.get(key)
        if cached is not None:
            self.counters["memo_hits"] += 1
            return cached
        if len(key) < 2:
            value = 0
        else:
            value = self._compute_diameter(tuple(sorted(key)))
            self.counters["full_group_scans"] += 1
        self._diameter_memo[key] = value
        return value

    def disagreeing_coordinates(self, indices: Iterable[int]) -> list[int]:
        """Coordinates the group disagrees on (memoized)."""
        key = frozenset(indices)
        cached = self._disagree_memo.get(key)
        if cached is not None:
            self.counters["memo_hits"] += 1
            return list(cached)
        if not key:
            value: tuple[int, ...] = ()
        else:
            value = tuple(self._compute_disagreeing(tuple(sorted(key))))
            self.counters["full_group_scans"] += 1
        self._disagree_memo[key] = value
        return list(value)

    def anon_cost(self, indices: Iterable[int]) -> int:
        """``ANON(S) = |S| * |disagreeing coordinates|`` (memoized)."""
        key = frozenset(indices)
        return len(key) * len(self.disagreeing_coordinates(key))

    def group_image(self, indices: Iterable[int]) -> Row:
        """The group's common anonymized vector under minimal suppression."""
        key = frozenset(indices)
        if not key:
            raise ValueError("a group image needs at least one vector")
        starred = set(self.disagreeing_coordinates(key))
        first = self.table.rows[min(key)]
        return tuple(
            STAR if j in starred else value for j, value in enumerate(first)
        )

    def radius_from(self, center: int, indices: Iterable[int]) -> int:
        """Max distance from row *center* to any row in *indices*."""
        return max((self.distance(center, i) for i in indices), default=0)

    def group_stats(self, members: Iterable[int] = ()) -> MutableGroupStats:
        """A fresh incremental statistics tracker seeded with *members*."""
        return MutableGroupStats(self, members)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(table={self.table!r})"


class PythonBackend(DistanceBackend):
    """Pure-Python reference backend: current semantics, no dependencies."""

    name = "python"

    def distance(self, i: int, j: int) -> int:
        rows = self.table.rows
        return _rows_distance(rows[i], rows[j])

    def _compute_distance_row(self, i: int) -> list[int]:
        rows = self.table.rows
        row_i = rows[i]
        return [_rows_distance(row_i, other) for other in rows]

    def _compute_matrix(self) -> list[list[int]]:
        rows = self.table.rows
        n = len(rows)
        matrix = [[0] * n for _ in range(n)]
        for i in range(n):
            row_i = rows[i]
            line = matrix[i]
            for j in range(i + 1, n):
                d = _rows_distance(row_i, rows[j])
                line[j] = d
                matrix[j][i] = d
        return matrix

    def _compute_diameter(self, indices: tuple[int, ...]) -> int:
        rows = self.table.rows
        return _rows_diameter([rows[i] for i in indices])

    def _compute_disagreeing(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        rows = self.table.rows
        return tuple(_rows_disagreeing([rows[i] for i in indices]))


class NumpyBackend(DistanceBackend):
    """Vectorized backend over an :class:`EncodedTable`.

    The distance matrix is filled by chunked broadcasting
    (``(codes[block, None, :] != codes[None, :, :]).sum(axis=2)``) — one
    row block at a time, never materializing more than ``_CHUNK_CELLS``
    comparison cells — and group reductions run over index arrays
    without touching Python tuples.
    """

    name = "numpy"

    def __init__(self, table):
        super().__init__(table)
        self._np_matrix: Any = None

    @property
    def encoded(self) -> EncodedTable:
        """The table's shared encoding (see :func:`encode_table`)."""
        return encode_table(self.table)

    def distance(self, i: int, j: int) -> int:
        if self._np_matrix is not None:
            return int(self._np_matrix[i, j])
        codes = self.encoded.codes
        return int((codes[i] != codes[j]).sum())

    def _compute_distance_row(self, i: int) -> list[int]:
        if self._np_matrix is not None:
            return [int(d) for d in self._np_matrix[i]]
        codes = self.encoded.codes
        return (codes != codes[i]).sum(axis=1).tolist()

    def matrix_array(self) -> Any:
        """The distance matrix as an ``int32`` numpy array (cached)."""
        if self._np_matrix is None:
            import numpy as np

            codes = self.encoded.codes
            n, m = codes.shape
            matrix = np.zeros((n, n), dtype=np.int32)
            block = max(1, _CHUNK_CELLS // max(1, n * m))
            for start in range(0, n, block):
                stop = min(start + block, n)
                matrix[start:stop] = (
                    codes[start:stop, None, :] != codes[None, :, :]
                ).sum(axis=2, dtype=np.int32)
                self.counters["matrix_rows"] += stop - start
            self._np_matrix = matrix
        return self._np_matrix

    def _compute_matrix(self) -> list[list[int]]:
        return self.matrix_array().tolist()

    def _compute_diameter(self, indices: tuple[int, ...]) -> int:
        import numpy as np

        if self._np_matrix is not None:
            idx = np.asarray(indices)
            return int(self._np_matrix[np.ix_(idx, idx)].max())
        codes = self.encoded.codes
        sub = codes[np.asarray(indices)]
        size, m = sub.shape
        best = 0
        block = max(1, _CHUNK_CELLS // max(1, size * m))
        for start in range(0, size, block):
            stop = min(start + block, size)
            diffs = (sub[start:stop, None, :] != sub[None, :, :]).sum(axis=2)
            best = max(best, int(diffs.max()))
        return best

    def _compute_disagreeing(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        import numpy as np

        codes = self.encoded.codes
        if codes.shape[1] == 0:
            return ()
        idx = np.asarray(indices)
        mismatched = (codes[idx[1:]] != codes[idx[0]]).any(axis=0)
        return tuple(int(j) for j in np.flatnonzero(mismatched))

    def radius_from(self, center: int, indices: Iterable[int]) -> int:
        import numpy as np

        idx = list(indices)
        if not idx:
            return 0
        if self._np_matrix is not None:
            return int(self._np_matrix[center, np.asarray(idx)].max())
        codes = self.encoded.codes
        return int((codes[np.asarray(idx)] != codes[center]).sum(axis=1).max())


#: 8-bit popcount lookup table, built on first use (numpy < 2.0 has no
#: ``bitwise_count`` ufunc; the LUT path views the uint64 lanes as bytes).
_POPCOUNT_LUT: Any = None


def _lane_popcounts(lanes: Any) -> Any:
    """Per-element popcounts of a contiguous ``uint64`` array."""
    import numpy as np

    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(lanes)
    global _POPCOUNT_LUT  # pragma: no cover - numpy >= 2 ships the ufunc
    if _POPCOUNT_LUT is None:  # pragma: no cover
        _POPCOUNT_LUT = np.array(
            [bin(v).count("1") for v in range(256)], dtype=np.uint8
        )
    return _POPCOUNT_LUT[  # pragma: no cover
        lanes.view(np.uint8).reshape(lanes.shape + (8,))
    ].sum(axis=-1, dtype=np.uint8)


class BitpackedBackend(NumpyBackend):
    """XOR + popcount distances over the bit-packed lane encoding.

    Binary columns (at most two post-encoding symbols, ``STAR``
    included) live ~64 per ``uint64`` lane, so one row-pair distance is
    ``n_lanes`` XORs and popcounts instead of ``m`` per-attribute
    compares; the residual wide columns fall back to the
    :class:`NumpyBackend` compare.  On wide binary tables — the
    Theorem 3.2 hardness regime — the distance matrix build runs an
    order of magnitude faster than the broadcast compare (gated at
    >= 5x by ``benchmarks/bench_e21_bitpack_kernel.py``).

    Group reductions that are not distance-shaped
    (``disagreeing_coordinates``, hence ``anon_cost`` / ``group_image``)
    reuse the inherited code-matrix kernels: the primitives stay
    bit-identical to :class:`PythonBackend` on every table.
    """

    name = "bitpacked"

    @property
    def packed(self) -> tuple[Any, Any]:
        """``(lanes, wide_codes)`` of the shared table encoding."""
        return self.encoded.pack()

    def distance(self, i: int, j: int) -> int:
        if self._np_matrix is not None:
            return int(self._np_matrix[i, j])
        lanes, wide = self.packed
        d = int(_lane_popcounts(lanes[i] ^ lanes[j]).sum())
        if wide.shape[1]:
            d += int((wide[i] != wide[j]).sum())
        return d

    def _compute_distance_row(self, i: int) -> list[int]:
        import numpy as np

        if self._np_matrix is not None:
            return [int(d) for d in self._np_matrix[i]]
        lanes, wide = self.packed
        row = _lane_popcounts(lanes ^ lanes[i]).sum(
            axis=1, dtype=np.int64
        )
        if wide.shape[1]:
            row += (wide != wide[i]).sum(axis=1)
        return row.tolist()

    def matrix_array(self) -> Any:
        """The distance matrix via chunked XOR + popcount (cached).

        Accumulates one lane (and one wide column) at a time: the
        temporaries stay two-dimensional ``(block, n)`` — XOR, popcount,
        add — instead of materializing a ``(block, n, n_lanes)`` cube
        and reducing it, which keeps the hot loop inside fast contiguous
        ufunc calls.
        """
        if self._np_matrix is None:
            import numpy as np

            lanes, wide = self.packed
            n = self.encoded.n_rows
            matrix = np.zeros((n, n), dtype=np.int32)
            # per-lane temporaries are (block, n) uint64 XOR grids
            block = max(1, _CHUNK_CELLS // max(1, n))
            for start in range(0, n, block):
                stop = min(start + block, n)
                ham = matrix[start:stop]
                for lane in range(lanes.shape[1]):
                    col = lanes[:, lane]
                    ham += _lane_popcounts(
                        col[start:stop, None] ^ col[None, :]
                    )
                for j in range(wide.shape[1]):
                    col = wide[:, j]
                    ham += col[start:stop, None] != col[None, :]
                self.counters["matrix_rows"] += stop - start
            self._np_matrix = matrix
        return self._np_matrix

    def _compute_diameter(self, indices: tuple[int, ...]) -> int:
        import numpy as np

        if self._np_matrix is not None:
            idx = np.asarray(indices)
            return int(self._np_matrix[np.ix_(idx, idx)].max())
        lanes, wide = self.packed
        idx = np.asarray(indices)
        sub_lanes = lanes[idx]
        sub_wide = wide[idx]
        size = len(indices)
        per_pair = max(1, 8 * lanes.shape[1] + wide.shape[1])
        best = 0
        block = max(1, _CHUNK_CELLS // max(1, size * per_pair))
        for start in range(0, size, block):
            stop = min(start + block, size)
            diffs = _lane_popcounts(
                sub_lanes[start:stop, None, :] ^ sub_lanes[None, :, :]
            ).sum(axis=2, dtype=np.int32)
            if wide.shape[1]:
                diffs += (
                    sub_wide[start:stop, None, :] != sub_wide[None, :, :]
                ).sum(axis=2, dtype=np.int32)
            best = max(best, int(diffs.max()))
        return best

    def radius_from(self, center: int, indices: Iterable[int]) -> int:
        import numpy as np

        idx = list(indices)
        if not idx:
            return 0
        if self._np_matrix is not None:
            return int(self._np_matrix[center, np.asarray(idx)].max())
        lanes, wide = self.packed
        sel = np.asarray(idx)
        dists = _lane_popcounts(lanes[sel] ^ lanes[center]).sum(
            axis=1, dtype=np.int64
        )
        if wide.shape[1]:
            dists += (wide[sel] != wide[center]).sum(axis=1)
        return int(dists.max())


# ----------------------------------------------------------------------
# Selection and per-table caching
# ----------------------------------------------------------------------

_BACKEND_CLASSES: dict[str, type[DistanceBackend]] = {
    "python": PythonBackend,
    "numpy": NumpyBackend,
    "bitpacked": BitpackedBackend,
}

#: id(table) -> {backend name -> backend}; entries evicted when the
#: table is garbage collected (tables carry a __weakref__ slot).
_BACKEND_CACHE: dict[int, dict[str, DistanceBackend]] = {}


def make_backend(table, name: str | None = None) -> DistanceBackend:
    """A fresh, uncached backend instance for *table*."""
    resolved = name if name is not None else default_backend_name()
    try:
        cls = _BACKEND_CLASSES[resolved]
    except KeyError:
        raise ValueError(
            f"unknown backend {resolved!r}; expected one of "
            f"{sorted(_BACKEND_CLASSES)}"
        ) from None
    if resolved != "python" and not numpy_available():  # pragma: no cover
        raise ValueError(
            f"{resolved} backend requested but numpy is not importable"
        )
    return cls(table)


def get_backend(
    table, backend: str | DistanceBackend | None = None
) -> DistanceBackend:
    """The shared backend of *table* (cached per table instance).

    :param backend: ``None`` (use :func:`default_backend_name`), a
        backend name, or an existing :class:`DistanceBackend` — an
        instance bound to *table* is returned as-is, so cached matrices
        and memos travel with it.
    """
    if isinstance(backend, DistanceBackend):
        if backend.table is table:
            return backend
        name = backend.name
    else:
        name = backend if backend is not None else default_backend_name()
    key = id(table)
    per_table = _BACKEND_CACHE.get(key)
    if per_table is None:
        per_table = {}
        _BACKEND_CACHE[key] = per_table
        try:
            weakref.finalize(table, _BACKEND_CACHE.pop, key, None)
        except TypeError:  # pragma: no cover - non-weakrefable table stand-in
            pass
    instance = per_table.get(name)
    if instance is None:
        instance = make_backend(table, name)
        per_table[name] = instance
    return instance
