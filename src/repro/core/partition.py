"""(k1, k2)-covers and partitions of a relation (Section 4.1).

A ``(k1, k2)``-cover of ``V`` is a collection of subsets of ``V``, each
of cardinality in ``[k1, k2]``, whose union is ``V``; a partition is a
cover with pairwise-disjoint sets.  Any k-anonymizer induces a
``(k, 2k-1)``-partition WLOG: a group of 2k or more vectors can be split
into two groups of at least k each without increasing the number of
stars (splitting can only shrink the set of disagreeing coordinates).

Groups are ``frozenset`` s of *row indices* into a fixed table, so
duplicate records are handled with multiset semantics for free.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.suppressor import Suppressor
from repro.core.table import Table

Group = frozenset[int]


class Cover:
    """A (k1, k2)-cover: groups of row indices whose union is all rows.

    :param groups: the member sets (any iterables of ints).
    :param n_rows: number of rows of the underlying table.
    :param k: the anonymity parameter; bounds default to ``[k, 2k-1]``.
    :param k_max: override for the upper cardinality bound.
    :param validate: check the cover conditions on construction.
    """

    _require_disjoint = False

    __slots__ = ("_groups", "_n_rows", "_k", "_k_max")

    def __init__(
        self,
        groups: Iterable[Iterable[int]],
        n_rows: int,
        k: int,
        k_max: int | None = None,
        validate: bool = True,
    ):
        self._groups: tuple[Group, ...] = tuple(frozenset(g) for g in groups)
        self._n_rows = n_rows
        self._k = k
        self._k_max = (2 * k - 1) if k_max is None else k_max
        if validate:
            self.validate()

    # ------------------------------------------------------------------

    @property
    def groups(self) -> tuple[Group, ...]:
        return self._groups

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def k(self) -> int:
        return self._k

    @property
    def k_max(self) -> int:
        return self._k_max

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups)

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless this is a valid (k, k_max)-cover
        (or partition, for :class:`Partition`)."""
        if self._k < 1:
            raise ValueError("k must be positive")
        if self._k_max < self._k:
            raise ValueError("k_max must be at least k")
        covered: set[int] = set()
        total = 0
        for group in self._groups:
            if not group:
                raise ValueError("empty group in cover")
            if not all(0 <= i < self._n_rows for i in group):
                raise ValueError("group contains out-of-range row index")
            if not self._k <= len(group) <= self._k_max:
                raise ValueError(
                    f"group of size {len(group)} outside "
                    f"[{self._k}, {self._k_max}]"
                )
            covered |= group
            total += len(group)
        if covered != set(range(self._n_rows)):
            missing = sorted(set(range(self._n_rows)) - covered)
            raise ValueError(f"rows not covered: {missing[:10]}")
        if self._require_disjoint and total != self._n_rows:
            raise ValueError("groups overlap; not a partition")

    def is_partition(self) -> bool:
        """True iff the groups are pairwise disjoint."""
        return sum(len(g) for g in self._groups) == self._n_rows

    # ------------------------------------------------------------------

    def diameter_sum(self, table: Table, backend=None) -> int:
        """``d(Pi) = sum over groups of d(S)`` — the paper's objective for
        the k-minimum diameter sum problem."""
        from repro.core.backend import get_backend

        resolved = get_backend(table, backend)
        return sum(resolved.diameter(group) for group in self._groups)

    def anon_cost(self, table: Table, backend=None) -> int:
        """Total stars needed to anonymize each group to its common image.

        For a partition this is the cost of the induced anonymization;
        for an overlapping cover it is only an accounting quantity.
        """
        from repro.core.backend import get_backend

        resolved = get_backend(table, backend)
        return sum(resolved.anon_cost(group) for group in self._groups)

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return (
            frozenset(self._groups) == frozenset(other._groups)
            and self._n_rows == other._n_rows
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._groups), self._n_rows))

    def __repr__(self) -> str:
        kind = "Partition" if self._require_disjoint else "Cover"
        return (
            f"{kind}(groups={len(self._groups)}, n_rows={self._n_rows}, "
            f"k={self._k})"
        )


class Partition(Cover):
    """A (k, k_max)-partition: a cover with pairwise-disjoint groups."""

    _require_disjoint = True

    __slots__ = ()

    @classmethod
    def from_cover(cls, cover: Cover) -> "Partition":
        """Reinterpret a disjoint cover as a partition (validating)."""
        return cls(cover.groups, cover.n_rows, cover.k, k_max=cover.k_max)

    @classmethod
    def single_group(cls, table: Table, k: int) -> "Partition":
        """The trivial partition with all rows in one group.

        Only valid when ``k <= n <= 2k-1``; otherwise the caller wants a
        real algorithm.
        """
        return cls(
            [range(table.n_rows)], table.n_rows, k, k_max=max(2 * k - 1,
                                                              table.n_rows)
        )


def anonymize_partition(
    table: Table, partition: Cover, backend=None
) -> tuple[Table, Suppressor]:
    """Step 3 of the paper's summary algorithm.

    For each group, star every coordinate on which the group disagrees, so
    all members become textually identical.  Returns the anonymized table
    and the suppressor that produced it.

    :raises ValueError: if *partition* is not actually disjoint (an
        overlapping cover does not induce a well-defined suppressor).
    """
    from repro.core.backend import get_backend

    if not partition.is_partition():
        raise ValueError("cannot anonymize from an overlapping cover; Reduce first")
    resolved = get_backend(table, backend)
    starred: dict[int, set[int]] = {}
    rows = table.rows
    for group in partition.groups:
        image = resolved.group_image(group)
        for i in group:
            coords = {
                j for j, value in enumerate(image)
                if value != rows[i][j]
            }
            if coords:
                starred[i] = coords
    suppressor = Suppressor(starred, n_rows=table.n_rows, degree=table.degree)
    return suppressor.apply(table), suppressor


def split_into_small_groups(
    table: Table, groups: Iterable[Iterable[int]], k: int, backend=None
) -> list[Group]:
    """Split oversized groups into pieces of size in ``[k, 2k-1]``.

    This implements the WLOG argument of Section 4.1: any group with 2k or
    more members can be split into two groups of at least k each, and the
    split "requires no more *s to k-anonymize it than the former one".
    Splits peel off the k members closest to an arbitrary anchor, which
    never increases (and usually decreases) total ANON cost.
    """
    from repro.core.backend import get_backend

    if k < 1:
        raise ValueError("k must be positive")
    resolved = get_backend(table, backend)
    result: list[Group] = []
    for raw in groups:
        members = sorted(raw)
        if len(members) < k:
            raise ValueError(f"group of size {len(members)} smaller than k={k}")
        while len(members) >= 2 * k:
            anchor = members[0]
            members.sort(key=lambda i: resolved.distance(anchor, i))
            result.append(frozenset(members[:k]))
            members = members[k:]
        result.append(frozenset(members))
    return result


def partition_from_equivalence(table: Table, k: int) -> Partition:
    """The partition induced by an already-k-anonymous table's classes.

    Groups rows by identical record, then splits classes larger than
    2k-1.  Raises if some class is smaller than k.
    """
    from repro.core.anonymity import equivalence_classes

    classes = list(equivalence_classes(table).values())
    groups = split_into_small_groups(table, classes, k)
    return Partition(groups, table.n_rows, k)
