"""Alphabets of attribute values and the suppression symbol.

The paper models a database as a subset ``V`` of ``Sigma^m`` for a finite
alphabet ``Sigma`` (which "could vary for each attribute"), together with
a fresh symbol — written ``*`` here — that is not in ``Sigma`` and marks
a suppressed entry.

This module provides:

* :data:`STAR` — the unique suppression sentinel.  It compares equal only
  to itself, so it can never collide with a legitimate attribute value,
  even the literal string ``"*"``.
* :class:`Alphabet` — an explicit, ordered, finite attribute domain.
* :func:`infer_alphabets` — derive per-attribute alphabets from data.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Any


class _SuppressionSymbol:
    """The fresh symbol ``*`` used for suppressed entries.

    A singleton: every construction attempt returns the same object, so
    identity and equality coincide and the symbol survives copying,
    pickling, and multiset bookkeeping unchanged.
    """

    _instance: "_SuppressionSymbol | None" = None

    def __new__(cls) -> "_SuppressionSymbol":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __hash__(self) -> int:
        return hash("__repro_suppression_symbol__")

    def __eq__(self, other: object) -> bool:
        return other is self

    def __copy__(self) -> "_SuppressionSymbol":
        return self

    def __deepcopy__(self, memo: dict) -> "_SuppressionSymbol":
        return self

    def __reduce__(self):
        return (_SuppressionSymbol, ())


STAR = _SuppressionSymbol()
"""The suppression symbol.  ``table[i][j] is STAR`` marks a withheld cell."""


def is_suppressed(value: Any) -> bool:
    """Return ``True`` iff *value* is the suppression symbol :data:`STAR`."""
    return value is STAR


class Alphabet:
    """A finite, ordered domain of values for one attribute.

    The order of first appearance is preserved, which keeps generated
    tables and CSV output deterministic.  Membership checks are O(1).

    >>> race = Alphabet(["Afr-Am", "Cauc", "Hisp"])
    >>> "Cauc" in race
    True
    >>> len(race)
    3
    """

    __slots__ = ("_values", "_index")

    def __init__(self, values: Iterable[Hashable]):
        ordered: list[Hashable] = []
        index: dict[Hashable, int] = {}
        for value in values:
            if value is STAR:
                raise ValueError("the suppression symbol cannot be an alphabet value")
            if value not in index:
                index[value] = len(ordered)
                ordered.append(value)
        if not ordered:
            raise ValueError("an alphabet must contain at least one value")
        self._values = tuple(ordered)
        self._index = index

    @property
    def values(self) -> tuple[Hashable, ...]:
        """The domain values, in first-appearance order."""
        return self._values

    def index(self, value: Hashable) -> int:
        """Position of *value* in the alphabet; raises ``KeyError`` if absent."""
        return self._index[value]

    def __contains__(self, value: object) -> bool:
        try:
            return value in self._index
        except TypeError:  # unhashable values are never members
            return False

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        shown = ", ".join(repr(v) for v in self._values[:6])
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"Alphabet([{shown}{suffix}])"


def infer_alphabets(rows: Sequence[Sequence[Hashable]]) -> list[Alphabet]:
    """Derive one :class:`Alphabet` per attribute from observed data.

    Suppressed cells (:data:`STAR`) are skipped: the suppression symbol is
    "a fresh symbol not in Sigma" and never part of a domain.

    :param rows: non-empty sequence of equal-length records.
    :raises ValueError: on empty input, ragged rows, or an attribute whose
        observed values are all suppressed.
    """
    if not rows:
        raise ValueError("cannot infer alphabets from an empty relation")
    degree = len(rows[0])
    for row in rows:
        if len(row) != degree:
            raise ValueError("rows must all have the same degree")
    alphabets: list[Alphabet] = []
    for j in range(degree):
        column = [row[j] for row in rows if row[j] is not STAR]
        if not column:
            raise ValueError(f"attribute {j} has no unsuppressed values to infer from")
        alphabets.append(Alphabet(column))
    return alphabets
