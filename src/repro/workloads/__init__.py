"""Workload generators for experiments and benchmarks."""

from repro.workloads.adult_like import adult_like_table
from repro.workloads.adversarial import (
    attribute_reduction_instance,
    entry_reduction_instance,
)
from repro.workloads.census import census_table, quasi_identifiers
from repro.workloads.synthetic import (
    duplicate_heavy_table,
    planted_groups_table,
    uniform_table,
    zipf_table,
)
from repro.workloads.transactions import planted_basket_table, transaction_table

__all__ = [
    "adult_like_table",
    "attribute_reduction_instance",
    "census_table",
    "duplicate_heavy_table",
    "entry_reduction_instance",
    "planted_basket_table",
    "planted_groups_table",
    "quasi_identifiers",
    "transaction_table",
    "uniform_table",
    "zipf_table",
]
