"""Hardness-derived workloads: the reduction tables as benchmark inputs.

These are the adversarial instances the NP-hardness proofs construct —
precisely the tables on which geometry-blind heuristics do worst and the
threshold structure of Theorems 3.1/3.2 is sharp.
"""

from __future__ import annotations

import numpy as np

from repro.hardness.generators import (
    matchless_hypergraph,
    planted_matching_hypergraph,
)
from repro.hardness.reductions import (
    AttributeSuppressionReduction,
    EntrySuppressionReduction,
)


def entry_reduction_instance(
    n_groups: int,
    k: int = 3,
    extra_edges: int = 3,
    with_matching: bool = True,
    seed: int | np.random.Generator = 0,
) -> EntrySuppressionReduction:
    """A Theorem 3.1 instance with known matching status.

    With ``with_matching=True`` the source hypergraph contains a planted
    perfect matching (so the instance's optimum meets the threshold
    ``n (m-1)``); otherwise every edge shares a vertex and no perfect
    matching exists (the optimum strictly exceeds the threshold).
    """
    if with_matching:
        graph, _ = planted_matching_hypergraph(
            n_groups, k, extra_edges=extra_edges, seed=seed
        )
    else:
        graph = matchless_hypergraph(
            n_groups, k, n_edges=n_groups + extra_edges, seed=seed
        )
    return EntrySuppressionReduction(graph, k)


def attribute_reduction_instance(
    n_groups: int,
    k: int = 3,
    extra_edges: int = 3,
    with_matching: bool = True,
    seed: int | np.random.Generator = 0,
) -> AttributeSuppressionReduction:
    """A Theorem 3.2 instance with known matching status."""
    if with_matching:
        graph, _ = planted_matching_hypergraph(
            n_groups, k, extra_edges=extra_edges, seed=seed
        )
    else:
        graph = matchless_hypergraph(
            n_groups, k, n_edges=n_groups + extra_edges, seed=seed
        )
    return AttributeSuppressionReduction(graph, k)
