"""Set-valued (market-basket) workloads as binary tables.

The attribute-suppression problem (Theorem 3.2) lives naturally on
binary incidence data: rows are transactions, columns are items, and
suppressing an attribute withholds an item column.  This generator
produces such tables with power-law item popularity and optional planted
groups of identical baskets, rounding out the workload families for the
E2/E8 experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.table import Table


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def transaction_table(
    n: int,
    n_items: int,
    popularity_exponent: float = 1.2,
    density: float = 0.25,
    seed: int | np.random.Generator = 0,
) -> Table:
    """``n`` transactions over ``n_items`` binary item columns.

    Item ``j`` is bought with probability proportional to
    ``(j+1)^-popularity_exponent`` scaled so the mean basket fills
    *density* of the columns — a classic power-law basket model.
    """
    if n < 0 or n_items < 1:
        raise ValueError("need n >= 0 and n_items >= 1")
    if not 0 < density < 1:
        raise ValueError("density must be in (0, 1)")
    if popularity_exponent < 0:
        raise ValueError("popularity_exponent must be non-negative")
    rng = _rng(seed)
    weights = 1.0 / np.arange(1, n_items + 1) ** popularity_exponent
    probabilities = weights * (density * n_items / weights.sum())
    probabilities = np.clip(probabilities, 0.0, 1.0)
    data = rng.random((n, n_items)) < probabilities
    return Table(
        [tuple(int(v) for v in row) for row in data],
        attributes=[f"item{j}" for j in range(n_items)],
    )


def planted_basket_table(
    n_groups: int,
    k: int,
    n_items: int,
    flip_probability: float = 0.05,
    seed: int | np.random.Generator = 0,
) -> Table:
    """``n_groups`` clusters of ``k`` near-identical baskets.

    Each group shares a random base basket; members flip each item with
    *flip_probability*.  At zero flips, optimal k-anonymity costs 0.
    """
    if n_groups < 1 or k < 1:
        raise ValueError("need n_groups >= 1 and k >= 1")
    if not 0 <= flip_probability <= 1:
        raise ValueError("flip_probability must be in [0, 1]")
    rng = _rng(seed)
    rows = []
    for _ in range(n_groups):
        base = rng.integers(0, 2, size=n_items)
        for _ in range(k):
            flips = rng.random(n_items) < flip_probability
            member = np.where(flips, 1 - base, base)
            rows.append(tuple(int(v) for v in member))
    order = rng.permutation(len(rows))
    return Table(
        [rows[int(i)] for i in order],
        attributes=[f"item{j}" for j in range(n_items)],
    )
