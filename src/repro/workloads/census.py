"""A census-like workload for the paper's motivating scenarios.

The introduction motivates k-anonymity with epidemic tracking and
product marketing over personal records; this generator produces a
synthetic table with the classic quasi-identifier schema (age, zipcode,
sex, race, education, marital status) plus a sensitive column (diagnosis)
with plausible marginals, entirely offline.
"""

from __future__ import annotations

import numpy as np

from repro.core.table import Table

_SEXES = ["F", "M"]
_RACES = ["Afr-Am", "Asian", "Cauc", "Hisp", "Other"]
_RACE_WEIGHTS = [0.13, 0.06, 0.6, 0.18, 0.03]
_EDUCATION = ["<HS", "HS", "SomeCollege", "Bachelors", "Graduate"]
_EDU_WEIGHTS = [0.1, 0.27, 0.29, 0.21, 0.13]
_MARITAL = ["Single", "Married", "Divorced", "Widowed"]
_MARITAL_WEIGHTS = [0.34, 0.48, 0.11, 0.07]
_DIAGNOSES = ["Healthy", "Flu", "Asthma", "Diabetes", "Fracture", "Hypertension"]
_DIAG_WEIGHTS = [0.45, 0.15, 0.1, 0.1, 0.08, 0.12]

ATTRIBUTES = ("age", "zipcode", "sex", "race", "education", "marital", "diagnosis")
QUASI_IDENTIFIERS = ("age", "zipcode", "sex", "race", "education", "marital")


def census_table(
    n: int,
    seed: int | np.random.Generator = 0,
    n_zip_regions: int = 4,
    age_bucket: int = 5,
) -> Table:
    """Generate *n* census-like records.

    * ``age`` — integer, triangular-ish distribution over 18..90,
      pre-bucketed to *age_bucket*-year bands so equality is meaningful
      in the suppression model (pass ``age_bucket=1`` for raw ages).
    * ``zipcode`` — 5-digit strings clustered into *n_zip_regions*
      3-digit prefixes, so locality exists for algorithms to find.
    * remaining columns — categorical with fixed marginals.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n_zip_regions < 1 or age_bucket < 1:
        raise ValueError("need n_zip_regions >= 1 and age_bucket >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    prefixes = [f"{int(p):03d}" for p in rng.choice(1000, size=n_zip_regions,
                                                    replace=False)]
    rows = []
    for _ in range(n):
        age = int(rng.triangular(18, 38, 90))
        age -= age % age_bucket
        region = prefixes[int(rng.integers(0, n_zip_regions))]
        suffix = int(rng.integers(0, 100))
        # two trailing digits, coarsened to tens so duplicates occur
        zipcode = f"{region}{suffix // 10}0"
        rows.append((
            age,
            zipcode,
            _SEXES[int(rng.integers(0, 2))],
            str(rng.choice(_RACES, p=_RACE_WEIGHTS)),
            str(rng.choice(_EDUCATION, p=_EDU_WEIGHTS)),
            str(rng.choice(_MARITAL, p=_MARITAL_WEIGHTS)),
            str(rng.choice(_DIAGNOSES, p=_DIAG_WEIGHTS)),
        ))
    return Table(rows, attributes=ATTRIBUTES)


def quasi_identifiers(table: Table) -> Table:
    """Project a census table onto its quasi-identifier columns.

    Anonymization operates on the quasi-identifiers; the sensitive column
    is released as-is alongside them.
    """
    present = [name for name in QUASI_IDENTIFIERS if name in table.attributes]
    return table.project(present)
