"""Synthetic table generators.

Every generator takes a ``seed`` (int or ``numpy.random.Generator``) and
is fully deterministic given it.  Values are small integers — the paper's
model is purely categorical, so only equality matters.
"""

from __future__ import annotations

import numpy as np

from repro.core.table import Table


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def uniform_table(
    n: int,
    m: int,
    alphabet_size: int = 4,
    seed: int | np.random.Generator = 0,
) -> Table:
    """``n`` rows, ``m`` attributes, each cell i.i.d. uniform.

    The hardest regime for anonymizers: no planted structure at all.
    """
    if n < 0 or m < 0 or alphabet_size < 1:
        raise ValueError("need n, m >= 0 and alphabet_size >= 1")
    rng = _rng(seed)
    data = rng.integers(0, alphabet_size, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


def zipf_table(
    n: int,
    m: int,
    alphabet_size: int = 16,
    exponent: float = 1.5,
    seed: int | np.random.Generator = 0,
) -> Table:
    """Cells drawn from a Zipf distribution over the alphabet.

    Models skewed categorical data (cities, diagnoses): a few very
    common values plus a long tail, which favours locality-aware
    algorithms.
    """
    if alphabet_size < 1:
        raise ValueError("alphabet_size must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = _rng(seed)
    weights = 1.0 / np.arange(1, alphabet_size + 1) ** exponent
    weights /= weights.sum()
    data = rng.choice(alphabet_size, size=(n, m), p=weights)
    return Table([tuple(int(v) for v in row) for row in data])


def planted_groups_table(
    n_groups: int,
    k: int,
    m: int,
    noise: float = 0.1,
    alphabet_size: int = 8,
    seed: int | np.random.Generator = 0,
    shuffle: bool = True,
) -> Table:
    """``n_groups`` clusters of ``k`` near-identical rows.

    Each group takes a random base record; members independently corrupt
    each cell with probability *noise*.  With ``noise = 0`` the optimal
    k-anonymization costs exactly 0 stars, giving experiments a known
    ground-truth anchor.
    """
    if n_groups < 1 or k < 1:
        raise ValueError("need n_groups >= 1 and k >= 1")
    if not 0 <= noise <= 1:
        raise ValueError("noise must be in [0, 1]")
    rng = _rng(seed)
    rows: list[tuple[int, ...]] = []
    for _ in range(n_groups):
        base = rng.integers(0, alphabet_size, size=m)
        for _ in range(k):
            flip = rng.random(m) < noise
            member = np.where(flip, rng.integers(0, alphabet_size, size=m), base)
            rows.append(tuple(int(v) for v in member))
    if shuffle:
        order = rng.permutation(len(rows))
        rows = [rows[int(i)] for i in order]
    return Table(rows)


def duplicate_heavy_table(
    n: int,
    m: int,
    n_distinct: int = 8,
    alphabet_size: int = 8,
    seed: int | np.random.Generator = 0,
) -> Table:
    """``n`` rows drawn (with repetition) from ``n_distinct`` records.

    The regime where :class:`repro.algorithms.SmallMExactAnonymizer`
    shines: few distinct records, arbitrary multiplicities.
    """
    if n_distinct < 1:
        raise ValueError("need at least one distinct record")
    rng = _rng(seed)
    pool = [
        tuple(int(v) for v in rng.integers(0, alphabet_size, size=m))
        for _ in range(n_distinct)
    ]
    picks = rng.integers(0, len(pool), size=n)
    return Table([pool[int(p)] for p in picks])
