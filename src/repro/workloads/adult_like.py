"""An Adult-census-like workload with *correlated* attributes.

The classic UCI Adult dataset is the de-facto benchmark table in the
k-anonymity literature; it cannot be shipped offline, so this generator
produces a synthetic stand-in with the property that actually matters
for anonymization experiments: **attribute correlation** (education
drives income bracket, age drives marital status, hours tracks income).
Correlated tables have much more exploitable locality than independent
ones — algorithms separate on them the way they do on real data.
"""

from __future__ import annotations

import numpy as np

from repro.core.table import Table

ATTRIBUTES = (
    "age", "education", "marital", "occupation", "hours", "income",
)

_EDUCATION = ["HS", "SomeCollege", "Bachelors", "Masters", "Doctorate"]
_OCCUPATIONS = ["Service", "Admin", "Craft", "Sales", "Professional",
                "Management"]


def adult_like_table(
    n: int,
    seed: int | np.random.Generator = 0,
    age_bucket: int = 10,
) -> Table:
    """Generate *n* correlated census records.

    Correlation structure (all soft, noise everywhere):

    * education level rises with a latent "class" variable;
    * income bracket rises with education and hours;
    * marital status depends on age band;
    * occupation correlates with education.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if age_bucket < 1:
        raise ValueError("age_bucket must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        latent = rng.random()  # socioeconomic latent factor
        age = int(rng.triangular(17, 35, 80))
        edu_level = min(
            len(_EDUCATION) - 1,
            int((latent * 0.7 + rng.random() * 0.3) * len(_EDUCATION)),
        )
        education = _EDUCATION[edu_level]
        if age < 26:
            marital = "Single" if rng.random() < 0.8 else "Married"
        elif age < 60:
            marital = "Married" if rng.random() < 0.65 else (
                "Single" if rng.random() < 0.5 else "Divorced"
            )
        else:
            roll = rng.random()
            marital = "Married" if roll < 0.55 else (
                "Widowed" if roll < 0.8 else "Divorced"
            )
        occ_band = 0.5 * (edu_level / (len(_EDUCATION) - 1)) + 0.5 * rng.random()
        occupation = _OCCUPATIONS[
            min(len(_OCCUPATIONS) - 1, int(occ_band * len(_OCCUPATIONS)))
        ]
        hours = int(np.clip(rng.normal(40 + 4 * latent, 8), 10, 80))
        income_score = 0.5 * latent + 0.3 * (edu_level / 4) + 0.2 * (hours / 80)
        income = ">50K" if income_score + 0.15 * rng.random() > 0.62 else "<=50K"
        rows.append((
            age - age % age_bucket,
            education,
            marital,
            occupation,
            hours - hours % 10,
            income,
        ))
    return Table(rows, attributes=ATTRIBUTES)
