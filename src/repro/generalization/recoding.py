"""Applying generalization schemes to tables."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy


def generalize_table(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    levels: Sequence[int],
) -> Table:
    """Full-domain recoding: generalize column ``j`` to ``levels[j]``.

    >>> from repro.core.table import Table
    >>> h = Hierarchy.suppression(["a", "b"])
    >>> generalize_table(Table([("a",), ("b",)]), [h], [1]).rows
    (('*',), ('*',))
    """
    if len(hierarchies) != table.degree or len(levels) != table.degree:
        raise ValueError("need one hierarchy and one level per attribute")
    rows = [
        tuple(
            hierarchy.generalize(value, level)
            for value, hierarchy, level in zip(row, hierarchies, levels)
        )
        for row in table.rows
    ]
    return table.with_rows(rows)


def generalization_precision(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    levels: Sequence[int],
) -> float:
    """Sweeney's Prec metric: ``1 - mean(level / height)`` over cells.

    1.0 means nothing generalized; 0.0 means everything at the root.
    """
    if len(hierarchies) != table.degree or len(levels) != table.degree:
        raise ValueError("need one hierarchy and one level per attribute")
    if table.degree == 0 or table.n_rows == 0:
        return 1.0
    loss = sum(
        level / hierarchy.height
        for hierarchy, level in zip(hierarchies, levels)
    )
    return 1.0 - loss / table.degree


def group_lca_levels(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    indices: Sequence[int],
) -> list[int]:
    """Per-attribute level needed to make a group identical by
    generalization — the hierarchy analogue of the paper's disagreeing
    coordinates (a coordinate's LCA level is 0 exactly when the group
    already agrees on it)."""
    if len(hierarchies) != table.degree:
        raise ValueError("need one hierarchy per attribute")
    rows = [table.rows[i] for i in indices]
    if not rows:
        raise ValueError("need a non-empty group")
    return [
        hierarchy.lca_level([row[j] for row in rows])
        for j, hierarchy in enumerate(hierarchies)
    ]
