"""Exact optimal cell-level generalization (small n).

Minimizes the total recoding loss (per-cell ``LCA level / height``) over
all (k, 2k-1)-partitions, via the shared subset-DP engine.  With
suppression hierarchies this IS the paper's optimal k-anonymity (loss ==
star count); with real hierarchies it is the generalization-aware
optimum the intro's example suggests.

Soundness of the size cap: splitting a group can only lower each
attribute's LCA level, so recoding loss — like ANON — never grows under
splits, and groups of size at most ``2k - 1`` suffice.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.partition import Partition
from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy


def optimal_recoding(
    table: Table,
    k: int,
    hierarchies: Sequence[Hierarchy],
) -> tuple[float, Partition]:
    """Exact minimum recoding loss and an optimal partition.

    :returns: ``(loss, partition)``; apply
        :func:`repro.generalization.cell_recoding.recode_partition` to
        the partition for the released table.
    :raises ValueError: on ``0 < n < k`` or wrong hierarchy arity.
    """
    from repro.algorithms.partition_dp import minimum_cost_partition

    if len(hierarchies) != table.degree:
        raise ValueError("need one hierarchy per attribute")
    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0.0, Partition([], 0, k)
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows

    def group_cost(members: tuple[int, ...]) -> float:
        loss = 0.0
        for j, hierarchy in enumerate(hierarchies):
            level = hierarchy.lca_level([rows[i][j] for i in members])
            loss += len(members) * (level / hierarchy.height)
        return loss

    loss, groups = minimum_cost_partition(n, k, group_cost)
    return float(loss), Partition(groups, n, k, k_max=min(2 * k - 1, n))
