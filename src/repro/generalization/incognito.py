"""Incognito-style full-domain generalization search (LeFevre et al. 2005).

Samarati's binary search returns *one* minimal-height node; Incognito
enumerates **all minimal satisfying nodes** of the generalization
lattice — the Pareto frontier a data publisher actually chooses from —
using the two monotonicity properties:

* *generalization*: if a node satisfies k-anonymity, every ancestor
  (component-wise >=) does too, so satisfying non-minimal nodes need no
  check;
* *subset (a priori)*: if a node fails on a subset of the attributes it
  fails on all of them, pruning whole branches early (we exploit the
  single-lattice consequence: a node can only satisfy if all its
  predecessors' failures don't already imply failure... concretely we
  run a bottom-up BFS, never re-testing above a known-satisfying node).

Bottom-up BFS from the bottom node; a node is tested only if none of
its predecessors satisfied.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy
from repro.generalization.lattice import GeneralizationLattice, Node
from repro.generalization.recoding import generalization_precision


def incognito(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    k: int,
    max_suppressed_rows: int = 0,
) -> list[Node]:
    """All minimal satisfying nodes of the generalization lattice.

    A node is *minimal satisfying* if it k-anonymizes the table (with
    the given row-suppression allowance) and no strict component-wise
    predecessor does.

    :returns: the minimal nodes, sorted by (height, precision-desc,
        lexicographic); empty never happens — the top node always
        satisfies for feasible inputs.
    :raises ValueError: if even the top node fails.
    """
    lattice = GeneralizationLattice(hierarchies)
    if not lattice.satisfies(table, lattice.top, k, max_suppressed_rows):
        raise ValueError(
            f"even full generalization cannot {k}-anonymize "
            f"{table.n_rows} rows with {max_suppressed_rows} suppressions"
        )

    satisfied: dict[Node, bool] = {}

    def check(node: Node) -> bool:
        cached = satisfied.get(node)
        if cached is None:
            cached = lattice.satisfies(table, node, k, max_suppressed_rows)
            satisfied[node] = cached
        return cached

    minimal: list[Node] = []
    seen: set[Node] = set()
    queue: deque[Node] = deque([lattice.bottom])
    seen.add(lattice.bottom)
    # BFS by height: nodes are enqueued in non-decreasing height order,
    # so every already-found minimal node has height <= the current
    # node's, and the domination filter below is complete.
    while queue:
        node = queue.popleft()
        if check(node):
            if not any(
                all(p <= q for p, q in zip(mini, node)) for mini in minimal
            ):
                minimal.append(node)
            continue  # ancestors satisfy by monotonicity: prune upward
        for successor in lattice.successors(node):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)

    def sort_key(node: Node):
        prec = generalization_precision(table, hierarchies, list(node))
        return (sum(node), -prec, node)

    minimal.sort(key=sort_key)
    assert minimal, "the top node satisfies, so some minimal node exists"
    return minimal


def best_incognito_node(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    k: int,
    max_suppressed_rows: int = 0,
) -> Node:
    """The minimal satisfying node with the best precision (ties by
    height then lexicographic) — a drop-in alternative to
    :func:`repro.generalization.samarati.samarati`."""
    candidates = incognito(table, hierarchies, k, max_suppressed_rows)
    return min(
        candidates,
        key=lambda node: (
            -generalization_precision(table, hierarchies, list(node)),
            sum(node),
            node,
        ),
    )
