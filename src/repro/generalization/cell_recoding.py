"""Cell-level (local) generalization along a partition — the bridge
between the paper's suppression model and the intro's generalization.

The paper's Step 3 stars every coordinate a group disagrees on; with a
value generalization hierarchy per attribute we can do strictly better:
replace the disagreeing coordinate with the group's **least common
ancestor** instead of ``*``.  The released group is still textually
identical (k-anonymity holds verbatim) but retains partial information
("20-40" instead of ``*``).

Information loss is measured with per-cell precision loss
``level / height`` (Sweeney's Prec, cell-level), which reduces to the
star count when every hierarchy is the 1-level suppression hierarchy —
so this strictly generalizes the paper's objective.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.partition import Cover
from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy


def recode_partition(
    table: Table,
    partition: Cover,
    hierarchies: Sequence[Hierarchy],
) -> Table:
    """Generalize each group to its per-attribute LCA labels.

    :raises ValueError: if *partition* overlaps or hierarchy arity is
        wrong.

    >>> from repro.core.partition import Partition
    >>> t = Table([(34,), (47,)])
    >>> from repro.generalization.interval import interval_hierarchy
    >>> h = interval_hierarchy(0, 80, base_width=40)
    >>> p = Partition([{0, 1}], n_rows=2, k=2)
    >>> recode_partition(t, p, [h]).rows
    (('0-79',), ('0-79',))
    """
    if len(hierarchies) != table.degree:
        raise ValueError("need one hierarchy per attribute")
    if not partition.is_partition():
        raise ValueError("cannot recode an overlapping cover; Reduce first")
    new_rows: list[tuple] = [None] * table.n_rows  # type: ignore[list-item]
    for group in partition.groups:
        members = sorted(group)
        labels = []
        for j, hierarchy in enumerate(hierarchies):
            values = [table.rows[i][j] for i in members]
            level = hierarchy.lca_level(values)
            labels.append(hierarchy.generalize(values[0], level))
        image = tuple(labels)
        for i in members:
            new_rows[i] = image
    return table.with_rows(new_rows)


def recoding_loss(
    table: Table,
    partition: Cover,
    hierarchies: Sequence[Hierarchy],
) -> float:
    """Total precision loss ``sum over cells of level/height``.

    With suppression hierarchies (height 1) this equals the paper's
    star count exactly — tested in ``tests/test_cell_recoding.py``.
    """
    if len(hierarchies) != table.degree:
        raise ValueError("need one hierarchy per attribute")
    if not partition.is_partition():
        raise ValueError("cannot recode an overlapping cover; Reduce first")
    loss = 0.0
    for group in partition.groups:
        members = sorted(group)
        for j, hierarchy in enumerate(hierarchies):
            values = [table.rows[i][j] for i in members]
            level = hierarchy.lca_level(values)
            loss += len(members) * (level / hierarchy.height)
    return loss
