"""Samarati's binary-search algorithm over the generalization lattice.

Samarati & Sweeney's original full-domain approach: k-anonymizability is
monotone in the lattice order, so *some* node at height ``h`` satisfies
k-anonymity implies some node at every height ``h' >= h`` does (raise any
coordinate of a satisfying node).  Binary search on the height therefore
finds the minimum satisfying height; among that height's satisfying
nodes we return the one with the best precision.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy
from repro.generalization.lattice import GeneralizationLattice, Node
from repro.generalization.recoding import generalization_precision


def samarati(
    table: Table,
    hierarchies: Sequence[Hierarchy],
    k: int,
    max_suppressed_rows: int = 0,
) -> tuple[Node, int]:
    """Minimum-height satisfying node of the generalization lattice.

    :returns: ``(node, height)`` where *node* is a satisfying level
        vector of minimal height (ties broken by best precision, then
        lexicographically).
    :raises ValueError: if even the top node fails (possible only when
        ``n < k`` beyond the suppression allowance).
    """
    lattice = GeneralizationLattice(hierarchies)

    def any_satisfying(height: int) -> Node | None:
        best: tuple[float, Node] | None = None
        for node in lattice.nodes_at_height(height):
            if lattice.satisfies(table, node, k, max_suppressed_rows):
                prec = generalization_precision(table, hierarchies, list(node))
                key = (-prec, node)
                if best is None or key < best:
                    best = key
        return None if best is None else best[1]

    low, high = 0, lattice.max_height
    if any_satisfying(high) is None:
        raise ValueError(
            f"even full generalization cannot {k}-anonymize "
            f"{table.n_rows} rows with {max_suppressed_rows} suppressions"
        )
    # Invariant: some node at `high` satisfies; no node below `low` does.
    while low < high:
        mid = (low + high) // 2
        if any_satisfying(mid) is not None:
            high = mid
        else:
            low = mid + 1
    node = any_satisfying(low)
    assert node is not None
    return node, low
