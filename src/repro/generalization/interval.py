"""Numeric interval hierarchies ("age 34" -> "30-39" -> "0-79" -> "*")."""

from __future__ import annotations

from repro.generalization.hierarchy import Hierarchy


def interval_hierarchy(
    low: int,
    high: int,
    base_width: int,
    branching: int = 2,
    root: str = "*",
) -> Hierarchy:
    """A uniform interval hierarchy over the integers ``[low, high)``.

    Level 1 groups values into buckets of *base_width*; each further
    level merges *branching* adjacent buckets, until a single bucket
    remains, which generalizes to the root.  When the range does not
    divide evenly, a merged bucket can span the same values as its only
    child; such labels are disambiguated with a ``+`` suffix so every
    level keeps distinct node identities (uniform depth).

    >>> h = interval_hierarchy(0, 8, base_width=2, branching=2)
    >>> h.generalize(5, 1)
    '4-5'
    >>> h.generalize(5, 2)
    '4-7'
    >>> h.height
    4
    """
    if high <= low:
        raise ValueError("need low < high")
    if base_width < 1 or branching < 2:
        raise ValueError("need base_width >= 1 and branching >= 2")
    parent: dict = {}
    used: set[str] = set()

    def fresh_label(start: int, width: int) -> str:
        end = min(start + width, high) - 1
        label = f"{start}-{end}"
        while label in used:
            label += "+"
        used.add(label)
        return label

    width = base_width
    starts = list(range(low, high, width))
    labels = [fresh_label(start, width) for start in starts]
    for start, label in zip(starts, labels):
        for value in range(start, min(start + width, high)):
            parent[value] = label

    while len(labels) > 1:
        next_width = width * branching
        next_starts = list(range(low, high, next_width))
        next_labels = [fresh_label(start, next_width) for start in next_starts]
        for start, label in zip(starts, labels):
            slot = (start - low) // next_width
            parent[label] = next_labels[slot]
        starts, labels, width = next_starts, next_labels, next_width

    parent[labels[0]] = root
    return Hierarchy(parent, root)
