"""Value generalization hierarchies (VGHs).

A hierarchy is a rooted tree whose leaves are the attribute's base
values; inner nodes are admissible generalizations ("R*", "20-40", ...)
and the root is conventionally the fully suppressed value.  Levels count
upward from the leaves: level 0 is the original value, level ``height``
is the root.

For full-domain recoding all leaves must sit at the same depth; the
constructor enforces this.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping


class Hierarchy:
    """A uniform-depth taxonomy tree for one attribute.

    Build from a nested mapping (inner nodes) whose bottom values are
    iterables of leaves:

    >>> race = Hierarchy.from_nested({"*": {"person": ["Afr-Am", "Cauc", "Hisp"]}})
    >>> race.height
    2
    >>> race.generalize("Cauc", 1)
    'person'
    >>> race.lca_level(["Afr-Am", "Hisp"])
    1
    """

    __slots__ = ("_parent", "_label_level", "_leaves", "_root", "_height")

    def __init__(self, parent: Mapping[Hashable, Hashable], root: Hashable):
        """Low-level constructor from a child -> parent map.

        Prefer :meth:`from_nested` or :meth:`suppression`.
        """
        self._parent = dict(parent)
        self._root = root
        children = set(self._parent)
        parents = set(self._parent.values())
        if root in children:
            raise ValueError("root cannot have a parent")
        for node in parents - children - {root}:
            raise ValueError(f"node {node!r} has children but no parent chain")
        self._leaves = tuple(sorted(children - parents, key=repr))
        if not self._leaves:
            raise ValueError("hierarchy has no leaves")
        depths = {leaf: self._depth(leaf) for leaf in self._leaves}
        unique_depths = set(depths.values())
        if len(unique_depths) != 1:
            raise ValueError(f"leaves at mixed depths: {sorted(unique_depths)}")
        self._height = unique_depths.pop()
        # level of every label = height - depth
        self._label_level: dict[Hashable, int] = {}
        for leaf in self._leaves:
            node, depth = leaf, 0
            while True:
                self._label_level[node] = depth
                if node == root:
                    break
                node = self._parent[node]
                depth += 1

    def _depth(self, node: Hashable) -> int:
        depth = 0
        seen = set()
        while node != self._root:
            if node in seen:
                raise ValueError("cycle in parent map")
            seen.add(node)
            if node not in self._parent:
                raise ValueError(f"node {node!r} is disconnected from the root")
            node = self._parent[node]
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def from_nested(cls, nested: Mapping) -> "Hierarchy":
        """Build from a single-rooted nested mapping.

        Inner nodes are mapping keys; an inner node's value is either
        another mapping (more inner nodes) or an iterable of leaves.
        """
        if len(nested) != 1:
            raise ValueError("nested form must have exactly one root")
        parent: dict[Hashable, Hashable] = {}

        def walk(node: Hashable, subtree) -> None:
            if isinstance(subtree, Mapping):
                for child, below in subtree.items():
                    parent[child] = node
                    walk(child, below)
            else:
                for leaf in subtree:
                    parent[leaf] = node

        (root, below), = nested.items()
        walk(root, below)
        return cls(parent, root)

    @classmethod
    def suppression(cls, values: Iterable[Hashable], root: Hashable = "*"
                    ) -> "Hierarchy":
        """The one-level hierarchy: every value generalizes straight to
        the root.  Generalizing with it is exactly suppression."""
        return cls({value: root for value in values}, root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> Hashable:
        return self._root

    @property
    def height(self) -> int:
        """Number of generalization steps from a leaf to the root."""
        return self._height

    @property
    def leaves(self) -> tuple[Hashable, ...]:
        return self._leaves

    def level_of(self, label: Hashable) -> int:
        """The level (0 = leaf) of any node label in the tree."""
        try:
            return self._label_level[label]
        except KeyError:
            raise KeyError(f"{label!r} is not in this hierarchy") from None

    def generalize(self, value: Hashable, level: int) -> Hashable:
        """The ancestor of *value* at the given level.

        *value* may be any node; generalizing below its own level is an
        error, generalizing to its own level is the identity.
        """
        current = self.level_of(value)
        if not current <= level <= self._height:
            raise ValueError(
                f"cannot generalize level-{current} value {value!r} to "
                f"level {level} (height {self._height})"
            )
        node = value
        for _ in range(level - current):
            node = self._parent[node]
        return node

    def lca_level(self, values: Iterable[Hashable]) -> int:
        """The smallest level at which all *values* share an ancestor."""
        values = list(values)
        if not values:
            raise ValueError("need at least one value")
        level = max(self.level_of(v) for v in values)
        while level <= self._height:
            ancestors = {self.generalize(v, level) for v in values}
            if len(ancestors) == 1:
                return level
            level += 1
        raise AssertionError("the root is a common ancestor of everything")

    def __contains__(self, label: object) -> bool:
        try:
            return label in self._label_level
        except TypeError:
            return False

    def __repr__(self) -> str:
        return (
            f"Hierarchy(leaves={len(self._leaves)}, height={self._height})"
        )
