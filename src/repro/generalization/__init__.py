"""Generalization extension.

The paper's introduction anonymizes the hospital example with *admissible
generalizations* ("the specification of 20-40, R*, etc. ... must be given
prior to the input") but the formal body restricts to suppression.  This
package supplies the generalization machinery as the documented
extension: value generalization hierarchies, numeric interval
hierarchies, full-domain generalization lattices, and Samarati's
binary-search algorithm over them.
"""

from repro.generalization.cell_recoding import recode_partition, recoding_loss
from repro.generalization.hierarchy import Hierarchy
from repro.generalization.incognito import best_incognito_node, incognito
from repro.generalization.interval import interval_hierarchy
from repro.generalization.lattice import GeneralizationLattice
from repro.generalization.recoding import (
    generalization_precision,
    generalize_table,
    group_lca_levels,
)
from repro.generalization.samarati import samarati

__all__ = [
    "GeneralizationLattice",
    "Hierarchy",
    "best_incognito_node",
    "generalization_precision",
    "generalize_table",
    "group_lca_levels",
    "incognito",
    "interval_hierarchy",
    "recode_partition",
    "recoding_loss",
    "samarati",
]
