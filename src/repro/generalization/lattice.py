"""Full-domain generalization lattices.

A lattice node is a tuple of per-attribute levels; node ``a`` precedes
``b`` when ``a <= b`` component-wise.  k-anonymity is *monotone* on the
lattice (raising a level merges classes), which is what makes Samarati's
binary search sound.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from itertools import product

from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy
from repro.generalization.recoding import generalize_table

Node = tuple[int, ...]


class GeneralizationLattice:
    """The lattice of full-domain generalization level vectors.

    >>> h = Hierarchy.suppression(["a", "b"])
    >>> lattice = GeneralizationLattice([h, h])
    >>> sorted(lattice.nodes_at_height(1))
    [(0, 1), (1, 0)]
    """

    def __init__(self, hierarchies: Sequence[Hierarchy]):
        if not hierarchies:
            raise ValueError("need at least one hierarchy")
        self._hierarchies = tuple(hierarchies)
        self._heights = tuple(h.height for h in hierarchies)

    @property
    def hierarchies(self) -> tuple[Hierarchy, ...]:
        return self._hierarchies

    @property
    def bottom(self) -> Node:
        return (0,) * len(self._hierarchies)

    @property
    def top(self) -> Node:
        return self._heights

    @property
    def max_height(self) -> int:
        """Height of the top node: the sum of hierarchy heights."""
        return sum(self._heights)

    def height(self, node: Node) -> int:
        """A node's height = its level sum (Samarati's search coordinate)."""
        self._check(node)
        return sum(node)

    def _check(self, node: Node) -> None:
        if len(node) != len(self._hierarchies):
            raise ValueError("node arity mismatch")
        for level, height in zip(node, self._heights):
            if not 0 <= level <= height:
                raise ValueError(f"level {level} outside [0, {height}]")

    # ------------------------------------------------------------------

    def nodes_at_height(self, target: int):
        """All nodes with level sum *target* (generator)."""
        if not 0 <= target <= self.max_height:
            return
        for node in product(*(range(h + 1) for h in self._heights)):
            if sum(node) == target:
                yield node

    def successors(self, node: Node):
        """Nodes one level above in a single attribute."""
        self._check(node)
        for j, height in enumerate(self._heights):
            if node[j] < height:
                yield node[:j] + (node[j] + 1,) + node[j + 1:]

    # ------------------------------------------------------------------

    def satisfies(
        self,
        table: Table,
        node: Node,
        k: int,
        max_suppressed_rows: int = 0,
    ) -> bool:
        """Does recoding at *node* make the table k-anonymous, allowing
        up to *max_suppressed_rows* outlier records to be dropped
        (Samarati's MaxSup)?"""
        self._check(node)
        if k < 1:
            raise ValueError("k must be positive")
        recoded = generalize_table(table, self._hierarchies, list(node))
        counts = Counter(recoded.rows)
        violating = sum(c for c in counts.values() if c < k)
        return violating <= max_suppressed_rows
