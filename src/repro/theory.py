"""Closed-form bounds and certified inequalities from Section 4.

These helpers turn the paper's analysis into executable checks used by
both the test suite and the experiment harness:

* the approximation guarantees of Theorems 4.1 and 4.2;
* the diameter-sum sandwich of Lemma 4.1;
* the ball-diameter bound of Lemma 4.2;
* the cover-vs-partition loss of Lemma 4.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.distance import diameter_of, disagreeing_coordinates, group_rows
from repro.core.partition import Cover
from repro.core.table import Table


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n`` (0 for n <= 0)."""
    return sum(1.0 / i for i in range(1, n + 1))


def greedy_cover_ratio(max_set_size: int) -> float:
    """Johnson's greedy set-cover guarantee ``1 + ln(s)`` for sets of
    cardinality at most *s* (the bound the paper invokes from [6])."""
    if max_set_size < 1:
        raise ValueError("set size must be positive")
    return 1.0 + math.log(max_set_size)


def theorem_4_1_ratio(k: int) -> float:
    """Theorem 4.1's guarantee: ``3k (1 + ln 2k)``.

    The greedy Phase 1 runs over sets of size up to ``2k - 1 < 2k``, so
    the set-cover factor is ``1 + ln 2k``; combined with Corollary 4.1's
    factor ``3k`` this is the paper's ``O(k log k)`` with constant <= 4.
    """
    if k < 1:
        raise ValueError("k must be positive")
    return 3.0 * k * (1.0 + math.log(2 * k))


def theorem_4_2_ratio(k: int, m: int) -> float:
    """Theorem 4.2's guarantee: ``6k (1 + ln m)``.

    The ball restriction costs a factor 2 (Lemma 4.3), and greedy over
    balls of cardinality up to the whole relation pays ``1 + ln`` of the
    largest structure, bounded by the paper through m.
    """
    if k < 1 or m < 1:
        raise ValueError("k and m must be positive")
    return 6.0 * k * (1.0 + math.log(m))


# ----------------------------------------------------------------------
# Uniform-signature bound callables for the algorithm registry
# ----------------------------------------------------------------------


def theorem_4_1_bound(k: int, m: int) -> float:
    """Registry form of :func:`theorem_4_1_ratio` (*m* is unused — the
    Theorem 4.1 guarantee depends only on k)."""
    return theorem_4_1_ratio(k)


def theorem_4_2_bound(k: int, m: int) -> float:
    """Registry form of :func:`theorem_4_2_ratio`."""
    return theorem_4_2_ratio(k, m)


def exact_bound(k: int, m: int) -> float:
    """The trivial guarantee of a provably optimal solver.

    >>> exact_bound(3, 4)
    1.0
    """
    if k < 1 or m < 1:
        raise ValueError("k and m must be positive")
    return 1.0


def fpt_suppression_states(k: int, m: int, sigma: int) -> float:
    """Parameterized state-space bound of the pattern-DP exact solver.

    :class:`~repro.algorithms.fpt_suppression.FPTSuppressionAnonymizer`
    searches over *released vectors* — (projection, attribute-pattern)
    pairs — tracking, per open vector, only its deficit below ``k``.
    There are at most ``2^m`` patterns and at most ``sigma^m`` distinct
    records, so at most ``2^m * sigma^m`` vectors can ever be open, each
    in one of ``k + 1`` deficit states:

        ``states(k, m, sigma) <= (k + 1) ^ (2^m * sigma^m)``

    The bound is a function of the parameters ``(k, m, sigma)`` alone —
    the per-record work is polynomial in ``n`` — which is exactly the
    fixed-parameter tractability result the solver instantiates
    (k-anonymity is FPT in the number of attributes for bounded
    alphabets; cf. Bonizzoni et al., "Parameterized Complexity of
    k-Anonymity").  Reachable states in practice are vastly fewer; the
    solver guards with ``max_states`` rather than this ceiling.

    >>> fpt_suppression_states(2, 1, 2)   # (k+1)^(2 * 2) = 3^4
    81.0
    """
    if k < 1 or m < 1 or sigma < 1:
        raise ValueError("k, m, and sigma must be positive")
    open_vectors = (2.0 ** m) * (float(sigma) ** m)
    if open_vectors > 512:  # avoid overflow; the bound is astronomical
        return math.inf
    return float(k + 1) ** open_vectors


def diameter_lower_bound(table: Table, cover: Cover) -> int:
    """Lemma 4.1 lower bound: ``OPT(V) >= k * d(Pi)`` for any
    (k, 2k-1)-partition with minimum diameter sum — applied to the given
    cover, ``k * d(cover)`` is a valid lower bound only when the cover
    attains the minimum.  Tests use it on exact minimizers."""
    return cover.k * cover.diameter_sum(table)


@dataclass(frozen=True)
class SandwichReport:
    """Outcome of checking Lemma 4.1's inequalities on one instance."""

    k: int
    diameter_sum: int
    opt: int
    partition_cost: int
    lower_ok: bool
    upper_ok: bool

    @property
    def holds(self) -> bool:
        return self.lower_ok and self.upper_ok


def check_lemma_4_1(table: Table, best_partition: Cover, opt: int) -> SandwichReport:
    """Verify Lemma 4.1 on an instance with known optimum.

    *best_partition* must be a (k, 2k-1)-partition minimizing the
    diameter sum.  Checks:

    * lower: ``k * d(Pi) <= OPT``  (each group forces at least ``d(S)``
      starred coordinates in each of its >= k members);
    * upper: the induced anonymization of *best_partition* costs at most
      ``sum |S| (|S|-1) d(S)`` — groupwise, the union of disagreeing
      coordinates is at most ``(|S|-1) d(S)``.
    """
    k = best_partition.k
    dsum = best_partition.diameter_sum(table)
    lower_ok = k * dsum <= opt
    upper_ok = True
    cost = 0
    for group in best_partition.groups:
        rows = group_rows(table, group)
        s = len(rows)
        disagreements = len(disagreeing_coordinates(rows))
        d = diameter_of(table, group)
        cost += s * disagreements
        if disagreements > max(1, (s - 1)) * d:
            upper_ok = False
    return SandwichReport(
        k=k,
        diameter_sum=dsum,
        opt=opt,
        partition_cost=cost,
        lower_ok=lower_ok,
        upper_ok=upper_ok,
    )


def fit_power_law(sizes, times) -> float:
    """Least-squares exponent ``b`` of ``time ~ a * size^b`` (log-log fit).

    Used by the runtime experiments to turn E9's timing series into a
    scaling exponent: the Theorem 4.2 algorithm should fit ``b`` around
    2 (strongly polynomial), while the exact DP's apparent exponent
    grows with n (exponential growth has no stable power-law fit).

    :raises ValueError: on fewer than two points or non-positive data.
    """
    import math as _math

    sizes = [float(s) for s in sizes]
    times = [float(t) for t in times]
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need two or more (size, time) pairs")
    if any(s <= 0 for s in sizes) or any(t <= 0 for t in times):
        raise ValueError("sizes and times must be positive")
    xs = [_math.log(s) for s in sizes]
    ys = [_math.log(t) for t in times]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all sizes identical; exponent undefined")
    return sxy / sxx


def check_figure_1(table: Table, group_a: frozenset[int], group_b: frozenset[int]
                   ) -> bool:
    """Figure 1's triangle inequality on diameters: if the groups share a
    vector, ``d(A u B) <= d(A) + d(B)``."""
    if not (group_a & group_b):
        raise ValueError("Figure 1 requires overlapping groups")
    merged = group_a | group_b
    return diameter_of(table, merged) <= (
        diameter_of(table, group_a) + diameter_of(table, group_b)
    )
