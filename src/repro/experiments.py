"""Programmatic experiment runners.

The pytest benchmark harness (``benchmarks/``) regenerates the paper's
results under ``pytest-benchmark``; this module exposes the same
experiments as plain functions returning data structures, so users can
rerun them from notebooks or scripts (and the CLI's ``experiment``
command).  Each runner is deterministic given its seed.

Every runner takes a ``backend=`` selector (``"python"`` / ``"numpy"``)
that is applied *per call* to the algorithms it runs — a caller-owned
anonymizer instance is never reconfigured behind the caller's back.
Left as ``None``, the process-wide default applies — i.e. the
``REPRO_BACKEND`` environment variable picks the metric implementation
for every experiment.  The anonymization runners additionally accept
``timeout=`` (wall-clock seconds per call) and ``trace=`` (collect
structured run traces; see :mod:`repro.instrument`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.algorithms.base import Anonymizer
from repro.core.metrics import metric_report
from repro.core.table import Table


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


# ----------------------------------------------------------------------
# Approximation-ratio experiments (E3 / E4)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RatioRow:
    seed: int
    opt: int
    cost: int

    @property
    def ratio(self) -> float:
        if self.opt == 0:
            return 1.0 if self.cost == 0 else float("inf")
        return self.cost / self.opt


@dataclass(frozen=True)
class RatioExperiment:
    algorithm: str
    k: int
    m: int
    bound: float
    rows: tuple[RatioRow, ...] = field(default_factory=tuple)
    #: per-trial run traces (``RunTrace.to_dict()`` form) when the
    #: experiment ran with ``trace=True``; empty otherwise.
    traces: tuple[dict, ...] = field(default_factory=tuple)

    @property
    def max_ratio(self) -> float:
        if not self.rows:
            raise ValueError(
                "max_ratio is undefined for an experiment with no rows"
            )
        return max(row.ratio for row in self.rows)

    @property
    def mean_ratio(self) -> float:
        if not self.rows:
            raise ValueError(
                "mean_ratio is undefined for an experiment with no rows"
            )
        return sum(row.ratio for row in self.rows) / len(self.rows)

    @property
    def within_bound(self) -> bool:
        return self.max_ratio <= self.bound


def ratio_experiment(
    algorithm: Anonymizer,
    k: int,
    n: int = 9,
    m: int = 4,
    sigma: int = 3,
    trials: int = 20,
    base_seed: int = 0,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
) -> RatioExperiment:
    """Measured approximation ratios vs exact optima on random tables.

    Keep ``n <= ~12`` — every trial solves the instance exactly.

    ``backend`` / ``timeout`` / ``trace`` are passed per call to the
    algorithm (the caller's *algorithm* instance is never mutated).

    :raises ValueError: if ``trials < 1`` (the ratio statistics are
        undefined on an empty experiment).
    """
    from repro.algorithms.exact import optimal_anonymization
    from repro.theory import theorem_4_1_ratio, theorem_4_2_ratio

    if trials < 1:
        raise ValueError("ratio_experiment needs trials >= 1")
    rows = []
    traces = []
    for t in range(trials):
        table = _random_table(base_seed + t, n, m, sigma)
        opt, _ = optimal_anonymization(table, k, backend=backend)
        result = algorithm.anonymize(
            table, k, backend=backend, timeout=timeout, trace=trace
        )
        rows.append(RatioRow(seed=base_seed + t, opt=opt, cost=result.stars))
        if "trace" in result.extras:
            traces.append(result.extras["trace"])
    if algorithm.name == "greedy_cover":
        bound = theorem_4_1_ratio(k)
    else:
        bound = theorem_4_2_ratio(k, m)
    return RatioExperiment(
        algorithm=algorithm.name, k=k, m=m, bound=bound, rows=tuple(rows),
        traces=tuple(traces),
    )


# ----------------------------------------------------------------------
# Hardness-threshold experiments (E1 / E2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdResult:
    kind: str
    n: int
    m: int
    threshold: int
    optimum: int
    has_matching: bool

    @property
    def hits_threshold(self) -> bool:
        return self.optimum == self.threshold

    @property
    def consistent_with_theorem(self) -> bool:
        """Theorem 3.1/3.2: threshold met exactly iff a matching exists."""
        return self.hits_threshold == self.has_matching


def threshold_experiment(
    kind: str = "entries",
    n_groups: int = 2,
    extra_edges: int = 2,
    with_matching: bool = True,
    seed: int = 0,
) -> ThresholdResult:
    """Run one reduction instance end to end (exact solve included)."""
    from repro.algorithms.exact import (
        optimal_anonymization,
        optimal_attribute_suppression,
    )
    from repro.hardness.matching import has_perfect_matching
    from repro.workloads import (
        attribute_reduction_instance,
        entry_reduction_instance,
    )

    if kind == "entries":
        red = entry_reduction_instance(
            n_groups, k=3, extra_edges=extra_edges,
            with_matching=with_matching, seed=seed,
        )
        optimum, _ = optimal_anonymization(red.table, 3)
    elif kind == "attributes":
        red = attribute_reduction_instance(
            n_groups, k=3, extra_edges=extra_edges,
            with_matching=with_matching, seed=seed,
        )
        optimum, _ = optimal_attribute_suppression(red.table, 3)
    else:
        raise ValueError(f"unknown reduction kind {kind!r}")
    return ThresholdResult(
        kind=kind,
        n=red.table.n_rows,
        m=red.table.degree,
        threshold=red.threshold,
        optimum=optimum,
        has_matching=has_perfect_matching(red.graph),
    )


# ----------------------------------------------------------------------
# k sweep (E10) and algorithm comparison (E8)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    k: int
    stars: int
    precision: float
    classes: int
    #: run trace (``RunTrace.to_dict()`` form) when run with trace=True
    trace: dict | None = None


def k_sweep(
    table: Table,
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 8),
    algorithm: Anonymizer | None = None,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
) -> list[SweepPoint]:
    """Cost/utility across k — the E10 series on any table.

    ``backend`` / ``timeout`` / ``trace`` apply per call; a caller's
    *algorithm* instance is never mutated.
    """
    from repro.algorithms.center_cover import CenterCoverAnonymizer

    algorithm = algorithm if algorithm is not None else CenterCoverAnonymizer()
    points = []
    for k in ks:
        result = algorithm.anonymize(
            table, k, backend=backend, timeout=timeout, trace=trace
        )
        report = metric_report(result.anonymized, k)
        points.append(
            SweepPoint(
                k=k,
                stars=int(report["stars"]),
                precision=float(report["precision"]),
                classes=int(report["classes"]),
                trace=result.extras.get("trace"),
            )
        )
    return points


def comparison(
    table: Table,
    k: int,
    algorithms: dict[str, Callable[[], Anonymizer]] | None = None,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
    traces_out: dict[str, dict] | None = None,
) -> dict[str, int]:
    """Suppressed-cell counts per algorithm — one row of the E8 table.

    ``backend`` / ``timeout`` / ``trace`` apply per call without
    mutating the constructed anonymizers; pass a dict as *traces_out*
    to collect each algorithm's run trace under its name.
    """
    if algorithms is None:
        from repro.algorithms import (
            CenterCoverAnonymizer,
            DataflyAnonymizer,
            KMemberAnonymizer,
            MondrianAnonymizer,
            MSTForestAnonymizer,
            RandomPartitionAnonymizer,
            SortedChunkAnonymizer,
        )

        algorithms = {
            "center_cover": CenterCoverAnonymizer,
            "mondrian": MondrianAnonymizer,
            "kmember": KMemberAnonymizer,
            "mst_forest": MSTForestAnonymizer,
            "datafly": DataflyAnonymizer,
            "sorted_chunk": SortedChunkAnonymizer,
            "random": lambda: RandomPartitionAnonymizer(seed=0),
        }
    costs = {}
    for name, factory in algorithms.items():
        algorithm = factory()
        result = algorithm.anonymize(
            table, k, backend=backend, timeout=timeout, trace=trace
        )
        if not result.is_valid(table):
            raise AssertionError(f"{name} produced an invalid release")
        costs[name] = result.stars
        if traces_out is not None and "trace" in result.extras:
            traces_out[name] = result.extras["trace"]
    return costs
