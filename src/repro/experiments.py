"""Programmatic experiment runners with a parallel trial executor.

The pytest benchmark harness (``benchmarks/``) regenerates the paper's
results under ``pytest-benchmark``; this module exposes the same
experiments as plain functions returning data structures, so users can
rerun them from notebooks or scripts (and the CLI's ``experiment``
command).  Each runner is deterministic given its seed.

Three orthogonal knobs thread through every runner:

* ``backend=`` / ``timeout=`` / ``trace=`` are applied *per call* to the
  algorithms — a caller-owned anonymizer instance is never reconfigured
  (or even reused: every trial runs on a fresh deep copy, so stateful
  algorithms like simulated annealing see identical RNG state no matter
  how trials are scheduled).
* ``jobs=`` runs independent trials on a ``ProcessPoolExecutor`` with
  **spawn**-safe workers.  Per-trial seeds come from
  ``np.random.SeedSequence(base_seed, spawn_key=(trial,))`` — the spawn
  tree is indexed by trial, not by scheduling order, so ``jobs=1`` and
  ``jobs=N`` produce bit-identical results.  Workers re-resolve the
  distance backend in their own process (honouring ``REPRO_BACKEND``),
  and a :class:`~repro.instrument.BudgetExceededError` raised by any
  worker cancels the remaining trials and propagates.
* ``store=`` (a :class:`repro.artifacts.RunStore`) makes a sweep
  resumable: each finished trial appends a JSON record; on resume the
  workload is regenerated from its seed, its hash is checked against
  the record, and the stored result is reused without re-solving.

Proven approximation bounds come from the algorithm registry
(:mod:`repro.registry`), not from name string matching: an algorithm
without a registered guarantee yields ``bound=None`` and
``within_bound`` is undefined rather than silently borrowing
Theorem 4.2's bound.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable

import numpy as np

from repro import registry
from repro.algorithms.base import Anonymizer
from repro.artifacts import RunStore, table_hash
from repro.core.metrics import metric_report
from repro.core.table import Table
from repro.instrument import summarize_traces


# ----------------------------------------------------------------------
# Seeded workload helpers (shared by fresh runs, workers, and resume)
# ----------------------------------------------------------------------


def trial_seed_sequence(base_seed: int, trial: int) -> np.random.SeedSequence:
    """The per-trial seed: child *trial* of ``SeedSequence(base_seed)``.

    Constructed directly via ``spawn_key`` so trial *t*'s stream depends
    only on ``(base_seed, t)`` — never on how many trials run, in which
    order, or in which process.  This is what makes serial, parallel,
    and resumed sweeps bit-identical.
    """
    return np.random.SeedSequence(base_seed, spawn_key=(trial,))


def ratio_table(
    base_seed: int, trial: int, n: int, m: int, sigma: int
) -> Table:
    """Trial *trial*'s random table for the ratio experiments."""
    rng = np.random.default_rng(trial_seed_sequence(base_seed, trial))
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    """Plain seeded random table (kept for the benchmarks)."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


# ----------------------------------------------------------------------
# The parallel trial executor
# ----------------------------------------------------------------------


def _worker_init(backend_default: str | None) -> None:
    """Per-worker initialization under the spawn start method.

    The parent's ``REPRO_BACKEND`` choice is re-exported explicitly so
    the worker's lazily-resolved default backend matches the parent's
    even if the environment diverged between spawn and first use.
    """
    if backend_default:
        os.environ["REPRO_BACKEND"] = backend_default


class WorkerCrashError(RuntimeError):
    """A pool worker process died mid-task (hard exit, kill, segfault).

    Raised by :meth:`WorkerPool.run` in place of the executor's
    ``BrokenProcessPool`` *after* the broken executor has been torn
    down: the pool owner can report the failed batch and keep going —
    the next :meth:`WorkerPool.run` call transparently spawns a fresh
    set of workers.
    """


class WorkerPool:
    """A reusable spawn-context process pool for :func:`run_tasks`.

    The per-batch executor that :func:`run_tasks` builds internally pays
    one interpreter spawn plus a full ``repro`` import per worker on
    *every* call — fine for one long experiment sweep, fatal for a
    service dispatching many small batches.  ``WorkerPool`` keeps the
    workers alive across calls:

    * **reuse** — the underlying ``ProcessPoolExecutor`` is created
      lazily on the first :meth:`run` and kept warm for the next one;
    * **recycling** — with ``max_tasks_per_child=N`` the whole pool is
      torn down and respawned after roughly ``N`` tasks per worker
      (``N * jobs`` dispatched tasks), bounding the memory footprint of
      long-lived workers the way ``ProcessPoolExecutor``'s own
      ``max_tasks_per_child`` does, but identically on every supported
      Python version;
    * **crash recovery** — a worker dying mid-task fails only the batch
      in flight: the broken executor is discarded, a typed
      :class:`WorkerCrashError` is raised, and the next :meth:`run`
      rebuilds the pool.

    Thread-safe: dispatches are serialized by an internal lock, so an
    owner that calls :meth:`run` from a worker thread (the service's
    dispatcher does, via ``asyncio.to_thread``) needs no extra care.
    """

    def __init__(self, jobs: int, *, max_tasks_per_child: int | None = None):
        if jobs < 1:
            raise ValueError("jobs must be a positive integer")
        if max_tasks_per_child is not None and max_tasks_per_child < 1:
            raise ValueError("max_tasks_per_child must be a positive integer")
        self.jobs = jobs
        self.max_tasks_per_child = max_tasks_per_child
        self._executor: ProcessPoolExecutor | None = None
        self._dispatched = 0  # tasks sent to the current executor
        self._lock = threading.Lock()
        self.batches = 0
        self.tasks = 0
        self.rebuilds = 0  # crash-triggered teardowns
        self.recycled = 0  # scheduled max_tasks_per_child teardowns

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(os.environ.get("REPRO_BACKEND") or None,),
        )

    def _acquire(self, n_tasks: int) -> ProcessPoolExecutor:
        """The live executor, recycling or (re)spawning as needed."""
        with self._lock:
            if (
                self._executor is not None
                and self.max_tasks_per_child is not None
                and self._dispatched + n_tasks
                > self.max_tasks_per_child * self.jobs
            ):
                self._executor.shutdown(wait=True)
                self._executor = None
                self.recycled += 1
            if self._executor is None:
                self._executor = self._spawn()
                self._dispatched = 0
            self._dispatched += n_tasks
            return self._executor

    def _discard_broken(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            self.rebuilds += 1

    def run(self, fn: Callable[[Any], Any], tasks: list) -> list:
        """``[fn(t) for t in tasks]`` on the warm pool, in task order.

        Same contract as :func:`run_tasks`' pooled path — the first
        worker exception cancels the rest of the batch and re-raises —
        except a dead worker raises :class:`WorkerCrashError` (and only
        poisons this batch, not the pool object).
        """
        if not tasks:
            return []
        results: list = [None] * len(tasks)
        try:
            executor = self._acquire(len(tasks))
            self.batches += 1
            self.tasks += len(tasks)
            futures = {
                executor.submit(fn, task): index
                for index, task in enumerate(tasks)
            }
            try:
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        except BrokenExecutor as exc:
            self._discard_broken()
            raise WorkerCrashError(
                f"a worker process died mid-batch ({exc}); "
                "the pool will be rebuilt on the next dispatch"
            ) from exc
        return results

    def close(self) -> None:
        """Shut the workers down (idempotent; the pool can respawn)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    @property
    def alive(self) -> bool:
        """True iff worker processes are currently warm."""
        return self._executor is not None

    def stats(self) -> dict[str, Any]:
        """JSON-ready counters (surfaced by the service's ``stats`` op)."""
        return {
            "mode": "persistent",
            "workers": self.jobs,
            "alive": self.alive,
            "batches": self.batches,
            "tasks": self.tasks,
            "rebuilds": self.rebuilds,
            "recycled": self.recycled,
            "max_tasks_per_child": self.max_tasks_per_child,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "warm" if self.alive else "cold"
        return (
            f"WorkerPool(jobs={self.jobs}, {state}, "
            f"batches={self.batches}, rebuilds={self.rebuilds})"
        )


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: list,
    jobs: int = 1,
    *,
    pool: WorkerPool | None = None,
) -> list:
    """Run ``[fn(t) for t in tasks]``, optionally on a process pool.

    ``jobs=1`` (or a single task) executes inline; otherwise a
    spawn-context ``ProcessPoolExecutor`` fans the tasks out (*fn* and
    every task must be picklable).  Results always come back in task
    order.  The first worker exception cancels every not-yet-started
    task, shuts the pool down, and re-raises in the caller — a
    :class:`~repro.instrument.BudgetExceededError` in one trial surfaces
    exactly like it would serially, without orphaning worker processes.

    Passing a :class:`WorkerPool` as ``pool=`` dispatches onto that
    pool's warm workers instead of spawning a throwaway executor —
    *every* task then runs out of process (even a batch of one: the
    isolation is part of the point), ``jobs`` is ignored in favour of
    the pool's worker count, and a crashed worker raises
    :class:`WorkerCrashError` while leaving the pool reusable.

    This is the one fan-out primitive in the codebase: the experiment
    runners dispatch trials through it and the anonymization service
    (:mod:`repro.service.server`) dispatches request batches through it.
    """
    if pool is not None:
        return pool.run(fn, tasks)
    if jobs < 1:
        raise ValueError("jobs must be a positive integer")
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    results: list = [None] * len(tasks)
    context = get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        mp_context=context,
        initializer=_worker_init,
        initargs=(os.environ.get("REPRO_BACKEND") or None,),
    ) as executor:
        futures = {
            executor.submit(fn, task): index
            for index, task in enumerate(tasks)
        }
        try:
            for future in as_completed(futures):
                results[futures[future]] = future.result()
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return results


def _fresh_copy(algorithm: Anonymizer) -> Anonymizer:
    """A per-trial private copy of *algorithm*.

    Used inside the worker function on both the serial and the parallel
    path, so every trial starts from the caller's exact construction
    state (RNG included) regardless of scheduling.
    """
    return copy.deepcopy(algorithm)


def resolve_algorithm(algorithm: "Anonymizer | str") -> Anonymizer:
    """An :class:`Anonymizer` from an instance, a registry name, or
    ``"auto"``.

    Strings resolve through the registry (canonical names and aliases
    both work); the one extra name is ``"auto"``, which builds a
    :class:`repro.planner.PlannedAnonymizer` so an experiment can
    exercise the planner's per-instance dispatch.  ``auto`` deliberately
    has no registry entry, so :func:`repro.registry.proven_bound`
    reports no guarantee for it — a planned run only *sometimes*
    inherits a bound, and the experiment bound checks must not credit it
    with one.

    :raises KeyError: for an unknown algorithm name.
    """
    if isinstance(algorithm, str):
        if algorithm == "auto":
            from repro.planner import PlannedAnonymizer

            return PlannedAnonymizer()
        return registry.create(algorithm)
    return algorithm


# ----------------------------------------------------------------------
# Approximation-ratio experiments (E3 / E4)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RatioRow:
    seed: int
    opt: int
    cost: int

    @property
    def ratio(self) -> float:
        if self.opt == 0:
            return 1.0 if self.cost == 0 else float("inf")
        return self.cost / self.opt


@dataclass(frozen=True)
class RatioExperiment:
    algorithm: str
    k: int
    m: int
    #: proven approximation guarantee at (k, m) from the registry, or
    #: ``None`` for algorithms without one.
    bound: float | None
    rows: tuple[RatioRow, ...] = field(default_factory=tuple)
    #: per-trial run traces (``RunTrace.to_dict()`` form) when the
    #: experiment ran with ``trace=True``; empty otherwise.
    traces: tuple[dict, ...] = field(default_factory=tuple)

    @property
    def max_ratio(self) -> float:
        if not self.rows:
            raise ValueError(
                "max_ratio is undefined for an experiment with no rows"
            )
        return max(row.ratio for row in self.rows)

    @property
    def mean_ratio(self) -> float:
        if not self.rows:
            raise ValueError(
                "mean_ratio is undefined for an experiment with no rows"
            )
        return sum(row.ratio for row in self.rows) / len(self.rows)

    @property
    def has_bound(self) -> bool:
        """True iff the algorithm carries a proven guarantee."""
        return self.bound is not None

    @property
    def within_bound(self) -> bool:
        """Whether every measured ratio respects the proven bound.

        :raises ValueError: for algorithms without a proven guarantee —
            there is no bound to be within; check :attr:`has_bound`.
        """
        if self.bound is None:
            raise ValueError(
                f"{self.algorithm} has no proven approximation bound; "
                "within_bound is undefined (check has_bound first)"
            )
        return self.max_ratio <= self.bound


@dataclass(frozen=True)
class _RatioTask:
    algorithm: Anonymizer
    k: int
    n: int
    m: int
    sigma: int
    base_seed: int
    trial: int
    backend: str | None
    timeout: float | None
    trace: bool | None


def _ratio_trial(task: _RatioTask) -> dict[str, Any]:
    """One ratio trial: generate, solve exactly, run the algorithm."""
    from repro.algorithms.exact import optimal_anonymization

    table = ratio_table(task.base_seed, task.trial, task.n, task.m,
                        task.sigma)
    algorithm = _fresh_copy(task.algorithm)
    started = time.perf_counter()
    opt, _ = optimal_anonymization(table, task.k, backend=task.backend)
    opt_seconds = time.perf_counter() - started
    result = algorithm.anonymize(
        table, task.k, backend=task.backend, timeout=task.timeout,
        trace=task.trace,
    )
    return {
        "trial": task.trial,
        "seed": task.base_seed + task.trial,
        "algorithm": algorithm.name,
        "k": task.k,
        "opt": opt,
        "cost": result.stars,
        "opt_seconds": opt_seconds,
        "elapsed_seconds": time.perf_counter() - started,
        "instance_hash": table_hash(table),
        "deadline_hit": bool(result.extras.get("deadline_hit")),
        "trace": result.extras.get("trace"),
    }


def ratio_experiment(
    algorithm: "Anonymizer | str",
    k: int,
    n: int = 9,
    m: int = 4,
    sigma: int = 3,
    trials: int = 20,
    base_seed: int = 0,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
) -> RatioExperiment:
    """Measured approximation ratios vs exact optima on random tables.

    Keep ``n <= ~12`` — every trial solves the instance exactly.

    *algorithm* may be an :class:`Anonymizer` instance, a registry name
    or alias, or ``"auto"`` (planner dispatch per trial; carries no
    proven bound — see :func:`resolve_algorithm`).  ``backend`` /
    ``timeout`` / ``trace`` are passed per call to a fresh copy of the
    algorithm (the caller's *algorithm* instance is never mutated).
    ``jobs`` fans trials out over processes; ``store`` makes the sweep
    resumable (completed trials are verified against their recorded
    instance hash, then reused).

    :raises ValueError: if ``trials < 1`` (the ratio statistics are
        undefined on an empty experiment).
    """
    if trials < 1:
        raise ValueError("ratio_experiment needs trials >= 1")
    algorithm = resolve_algorithm(algorithm)
    bound = registry.proven_bound(algorithm, k, m)

    rows: list[RatioRow | None] = [None] * trials
    traces: dict[int, dict] = {}
    pending: list[int] = []
    for t in range(trials):
        key = f"trial-{t:04d}"
        if store is not None and store.done(key):
            table = ratio_table(base_seed, t, n, m, sigma)
            store.check_instance(key, table_hash(table))
            record = store.get(key)
            rows[t] = RatioRow(seed=record["seed"], opt=record["opt"],
                               cost=record["cost"])
            continue
        pending.append(t)

    tasks = [
        _RatioTask(algorithm=algorithm, k=k, n=n, m=m, sigma=sigma,
                   base_seed=base_seed, trial=t, backend=backend,
                   timeout=timeout, trace=trace)
        for t in pending
    ]
    for t, outcome in zip(pending, run_tasks(_ratio_trial, tasks, jobs)):
        rows[t] = RatioRow(seed=outcome["seed"], opt=outcome["opt"],
                           cost=outcome["cost"])
        if outcome["trace"] is not None:
            traces[t] = outcome["trace"]
        if store is not None:
            store.record(
                f"trial-{t:04d}",
                **{name: value for name, value in outcome.items()
                   if name != "trace"},
                trace_summary=summarize_traces(
                    [outcome["trace"]] if outcome["trace"] else []
                ),
            )

    return RatioExperiment(
        algorithm=algorithm.name, k=k, m=m, bound=bound,
        rows=tuple(rows),  # type: ignore[arg-type]
        traces=tuple(trace for _, trace in sorted(traces.items())),
    )


# ----------------------------------------------------------------------
# Hardness-threshold experiments (E1 / E2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdResult:
    kind: str
    n: int
    m: int
    threshold: int
    optimum: int
    has_matching: bool
    #: generator seed of this instance (identifies it within a sweep)
    seed: int = 0

    @property
    def hits_threshold(self) -> bool:
        return self.optimum == self.threshold

    @property
    def consistent_with_theorem(self) -> bool:
        """Theorem 3.1/3.2: threshold met exactly iff a matching exists."""
        return self.hits_threshold == self.has_matching


def threshold_instance(
    kind: str,
    n_groups: int,
    extra_edges: int,
    with_matching: bool,
    seed: int,
):
    """Seeded workload helper: build one reduction instance.

    Shared by fresh runs, pool workers, and resume verification, so a
    resumed sweep regenerates byte-identical instances.
    """
    from repro.workloads import (
        attribute_reduction_instance,
        entry_reduction_instance,
    )

    if kind == "entries":
        return entry_reduction_instance(
            n_groups, k=3, extra_edges=extra_edges,
            with_matching=with_matching, seed=seed,
        )
    if kind == "attributes":
        return attribute_reduction_instance(
            n_groups, k=3, extra_edges=extra_edges,
            with_matching=with_matching, seed=seed,
        )
    raise ValueError(f"unknown reduction kind {kind!r}")


@dataclass(frozen=True)
class _ThresholdTask:
    kind: str
    n_groups: int
    extra_edges: int
    with_matching: bool
    seed: int


def _threshold_trial(task: _ThresholdTask) -> dict[str, Any]:
    """One reduction instance end to end (exact solve included)."""
    from repro.algorithms.exact import (
        optimal_anonymization,
        optimal_attribute_suppression,
    )
    from repro.hardness.matching import has_perfect_matching

    red = threshold_instance(task.kind, task.n_groups, task.extra_edges,
                             task.with_matching, task.seed)
    started = time.perf_counter()
    if task.kind == "entries":
        optimum, _ = optimal_anonymization(red.table, 3)
    else:
        optimum, _ = optimal_attribute_suppression(red.table, 3)
    return {
        "kind": task.kind,
        "seed": task.seed,
        "with_matching": task.with_matching,
        "n": red.table.n_rows,
        "m": red.table.degree,
        "threshold": red.threshold,
        "optimum": optimum,
        "has_matching": has_perfect_matching(red.graph),
        "elapsed_seconds": time.perf_counter() - started,
        "instance_hash": table_hash(red.table),
    }


def _threshold_result(record: dict[str, Any]) -> ThresholdResult:
    return ThresholdResult(
        kind=record["kind"],
        n=record["n"],
        m=record["m"],
        threshold=record["threshold"],
        optimum=record["optimum"],
        has_matching=record["has_matching"],
        seed=record["seed"],
    )


def threshold_experiment(
    kind: str = "entries",
    n_groups: int = 2,
    extra_edges: int = 2,
    with_matching: bool = True,
    seed: int = 0,
    jobs: int = 1,
    store: RunStore | None = None,
) -> ThresholdResult:
    """Run one reduction instance end to end (exact solve included)."""
    return threshold_sweep(
        kind=kind, n_groups=n_groups, extra_edges=extra_edges,
        cases=((with_matching, seed),), jobs=jobs, store=store,
    )[0]


def threshold_sweep(
    kind: str = "entries",
    n_groups: int = 2,
    extra_edges: int = 2,
    cases: tuple[tuple[bool, int], ...] = ((True, 0), (False, 0)),
    jobs: int = 1,
    store: RunStore | None = None,
) -> list[ThresholdResult]:
    """Many reduction instances — the E1/E2 grid, parallel and resumable.

    :param cases: ``(with_matching, seed)`` pairs, one instance each.
    """
    if kind not in ("entries", "attributes"):
        raise ValueError(f"unknown reduction kind {kind!r}")
    results: list[ThresholdResult | None] = [None] * len(cases)
    pending: list[int] = []
    for index, (with_matching, seed) in enumerate(cases):
        key = f"{kind}-g{n_groups}-x{extra_edges}-m{int(with_matching)}-s{seed}"
        if store is not None and store.done(key):
            red = threshold_instance(kind, n_groups, extra_edges,
                                     with_matching, seed)
            store.check_instance(key, table_hash(red.table))
            results[index] = _threshold_result(store.get(key))
            continue
        pending.append(index)

    tasks = [
        _ThresholdTask(kind=kind, n_groups=n_groups,
                       extra_edges=extra_edges,
                       with_matching=cases[index][0], seed=cases[index][1])
        for index in pending
    ]
    for index, outcome in zip(pending,
                              run_tasks(_threshold_trial, tasks, jobs)):
        results[index] = _threshold_result(outcome)
        if store is not None:
            with_matching, seed = cases[index]
            store.record(
                f"{kind}-g{n_groups}-x{extra_edges}"
                f"-m{int(with_matching)}-s{seed}",
                **outcome,
            )
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# k sweep (E10) and algorithm comparison (E8)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    k: int
    stars: int
    precision: float
    classes: int
    #: run trace (``RunTrace.to_dict()`` form) when run with trace=True
    trace: dict | None = None


@dataclass(frozen=True)
class _SweepTask:
    table: Table
    k: int
    algorithm: Anonymizer
    backend: str | None
    timeout: float | None
    trace: bool | None


def _sweep_point(task: _SweepTask) -> dict[str, Any]:
    algorithm = _fresh_copy(task.algorithm)
    started = time.perf_counter()
    result = algorithm.anonymize(
        task.table, task.k, backend=task.backend, timeout=task.timeout,
        trace=task.trace,
    )
    report = metric_report(result.anonymized, task.k)
    return {
        "k": task.k,
        "algorithm": algorithm.name,
        "stars": int(report["stars"]),
        "precision": float(report["precision"]),
        "classes": int(report["classes"]),
        "elapsed_seconds": time.perf_counter() - started,
        "instance_hash": table_hash(task.table),
        "trace": result.extras.get("trace"),
    }


def k_sweep(
    table: Table,
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 8),
    algorithm: "Anonymizer | str | None" = None,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
) -> list[SweepPoint]:
    """Cost/utility across k — the E10 series on any table.

    *algorithm* may be an instance, a registry name, or ``"auto"``
    (planner dispatch per k cell).  ``backend`` / ``timeout`` /
    ``trace`` apply per call to a fresh copy of the algorithm; the
    caller's instance is never mutated.  ``jobs`` runs the k cells
    concurrently; with a ``store`` each cell records the table's hash,
    and a resumed sweep verifies it before reusing the cell.
    """
    from repro.algorithms.center_cover import CenterCoverAnonymizer

    algorithm = (
        CenterCoverAnonymizer() if algorithm is None
        else resolve_algorithm(algorithm)
    )
    points: list[SweepPoint | None] = [None] * len(ks)
    pending: list[int] = []
    for index, k in enumerate(ks):
        key = f"k-{k}"
        if store is not None and store.done(key):
            store.check_instance(key, table_hash(table))
            record = store.get(key)
            points[index] = SweepPoint(
                k=record["k"], stars=record["stars"],
                precision=record["precision"], classes=record["classes"],
            )
            continue
        pending.append(index)

    tasks = [
        _SweepTask(table=table, k=ks[index], algorithm=algorithm,
                   backend=backend, timeout=timeout, trace=trace)
        for index in pending
    ]
    for index, outcome in zip(pending, run_tasks(_sweep_point, tasks, jobs)):
        points[index] = SweepPoint(
            k=outcome["k"], stars=outcome["stars"],
            precision=outcome["precision"], classes=outcome["classes"],
            trace=outcome["trace"],
        )
        if store is not None:
            store.record(
                f"k-{ks[index]}",
                **{name: value for name, value in outcome.items()
                   if name != "trace"},
                trace_summary=summarize_traces(
                    [outcome["trace"]] if outcome["trace"] else []
                ),
            )
    return points  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Privacy experiment (E25): re-identification vs k, plus DP overhead
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PrivacyPoint:
    """One k cell of :func:`privacy_experiment`."""

    k: int
    stars: int
    #: fraction of records an aux-knowing adversary re-identifies uniquely
    fraction_unique: float
    min_match: int
    mean_match: float
    #: majority-vote sensitive-value inference accuracy
    inference_accuracy: float
    solve_seconds: float
    #: wall-clock of the ε-DP noisy-histogram post-pass
    dp_seconds: float
    classes: int

    @property
    def dp_overhead(self) -> float:
        """DP post-pass time as a fraction of the solve time."""
        if self.solve_seconds <= 0:
            return 0.0
        return self.dp_seconds / self.solve_seconds


@dataclass(frozen=True)
class PrivacyExperiment:
    """Attack-vs-k curve for one algorithm on the census workload."""

    algorithm: str
    n: int
    epsilon: float
    points: tuple[PrivacyPoint, ...] = field(default_factory=tuple)

    def point(self, k: int) -> PrivacyPoint:
        for point in self.points:
            if point.k == k:
                return point
        raise KeyError(f"no point for k={k}")

    @property
    def reidentification_drop(self) -> float:
        """Unique re-identification at the smallest k over the largest.

        ``inf`` when the largest k leaves nobody uniquely identifiable.
        """
        if len(self.points) < 2:
            raise ValueError("need at least two k cells to compare")
        first = min(self.points, key=lambda p: p.k).fraction_unique
        last = max(self.points, key=lambda p: p.k).fraction_unique
        if last == 0.0:
            return float("inf") if first > 0 else 1.0
        return first / last


@dataclass(frozen=True)
class _PrivacyTask:
    n: int
    k: int
    algorithm: Anonymizer
    epsilon: float
    base_seed: int
    backend: str | None
    timeout: float | None
    trace: bool | None


def _privacy_point(task: _PrivacyTask) -> dict[str, Any]:
    """One k cell: anonymize the QI columns, reattach the sensitive
    column, run the projection attack, and time the DP post-pass."""
    from repro.privacy.attack import projection_attack
    from repro.privacy.dp import noisy_class_histogram
    from repro.privacy.sensitive import reattach_sensitive, split_sensitive
    from repro.workloads import census_table

    table = census_table(task.n, seed=task.base_seed)
    identifiers, sensitive, index = split_sensitive(table, -1)
    algorithm = _fresh_copy(task.algorithm)
    started = time.perf_counter()
    result = algorithm.anonymize(
        identifiers, task.k, backend=task.backend, timeout=task.timeout,
        trace=task.trace,
    )
    solve_seconds = time.perf_counter() - started
    released = reattach_sensitive(
        result.anonymized, sensitive, index, table.attributes
    )
    started = time.perf_counter()
    dp = noisy_class_histogram(
        result.anonymized, task.epsilon, seed=task.base_seed + task.k
    )
    dp_seconds = time.perf_counter() - started
    # adversary knows every quasi-identifier, never the sensitive value
    aux = [column for column in range(table.degree) if column != index]
    report = projection_attack(released, table, aux, sensitive=index)
    return {
        "k": task.k,
        "algorithm": algorithm.name,
        "stars": result.stars,
        "fraction_unique": report.fraction_unique,
        "min_match": report.min_match,
        "mean_match": report.mean_match,
        "inference_accuracy": report.inference_accuracy,
        "solve_seconds": solve_seconds,
        "dp_seconds": dp_seconds,
        "classes": len(dp["classes"]),
        "instance_hash": table_hash(table),
        "trace": result.extras.get("trace"),
    }


def _privacy_record_point(record: dict[str, Any]) -> PrivacyPoint:
    return PrivacyPoint(
        k=record["k"], stars=record["stars"],
        fraction_unique=record["fraction_unique"],
        min_match=record["min_match"], mean_match=record["mean_match"],
        inference_accuracy=record["inference_accuracy"],
        solve_seconds=record["solve_seconds"],
        dp_seconds=record["dp_seconds"], classes=record["classes"],
    )


def privacy_experiment(
    n: int = 120,
    ks: tuple[int, ...] = (1, 2, 3, 5),
    algorithm: "Anonymizer | str | None" = None,
    epsilon: float = 1.0,
    base_seed: int = 0,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
) -> PrivacyExperiment:
    """E25: what k buys against a linkage adversary, and what DP costs.

    For each k, the census workload's quasi-identifiers are k-anonymized
    (the ``diagnosis`` column is held out as sensitive and reattached),
    a :func:`repro.privacy.attack.projection_attack` with full
    quasi-identifier auxiliary knowledge measures re-identification, and
    the ε-DP class-histogram post-pass is timed.  ``k=1`` is the
    no-anonymization baseline — every cell runs through the same solver
    path so the timing comparison is honest.

    *algorithm* defaults to ``center_cover``; a registry name, instance,
    or ``"auto"`` all work (see :func:`resolve_algorithm`).  ``jobs``
    runs k cells concurrently; ``store`` resumes a sweep, verifying each
    cell against the recorded workload hash.

    :raises ValueError: for an empty k tuple or a non-positive ε.
    """
    if not ks:
        raise ValueError("privacy_experiment needs at least one k")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    from repro.algorithms.center_cover import CenterCoverAnonymizer
    from repro.workloads import census_table

    algorithm = (
        CenterCoverAnonymizer() if algorithm is None
        else resolve_algorithm(algorithm)
    )
    points: list[PrivacyPoint | None] = [None] * len(ks)
    pending: list[int] = []
    workload_hash = table_hash(census_table(n, seed=base_seed))
    for index, k in enumerate(ks):
        key = f"k-{k}"
        if store is not None and store.done(key):
            store.check_instance(key, workload_hash)
            points[index] = _privacy_record_point(store.get(key))
            continue
        pending.append(index)

    tasks = [
        _PrivacyTask(n=n, k=ks[index], algorithm=algorithm,
                     epsilon=epsilon, base_seed=base_seed, backend=backend,
                     timeout=timeout, trace=trace)
        for index in pending
    ]
    for index, outcome in zip(pending,
                              run_tasks(_privacy_point, tasks, jobs)):
        points[index] = _privacy_record_point(outcome)
        if store is not None:
            store.record(
                f"k-{ks[index]}",
                **{name: value for name, value in outcome.items()
                   if name != "trace"},
                trace_summary=summarize_traces(
                    [outcome["trace"]] if outcome["trace"] else []
                ),
            )
    return PrivacyExperiment(
        algorithm=algorithm.name, n=n, epsilon=float(epsilon),
        points=tuple(points),  # type: ignore[arg-type]
    )


@dataclass(frozen=True)
class _ComparisonTask:
    table: Table
    k: int
    name: str
    factory: Callable[[], Anonymizer]
    backend: str | None
    timeout: float | None
    trace: bool | None


def _comparison_cell(task: _ComparisonTask) -> dict[str, Any]:
    algorithm = task.factory()
    started = time.perf_counter()
    result = algorithm.anonymize(
        task.table, task.k, backend=task.backend, timeout=task.timeout,
        trace=task.trace,
    )
    if not result.is_valid(task.table):
        raise AssertionError(f"{task.name} produced an invalid release")
    return {
        "name": task.name,
        "algorithm": algorithm.name,
        "k": task.k,
        "cost": result.stars,
        "elapsed_seconds": time.perf_counter() - started,
        "instance_hash": table_hash(task.table),
        "trace": result.extras.get("trace"),
    }


#: default E8 comparison line-up (registry names)
DEFAULT_COMPARISON_ALGORITHMS: tuple[str, ...] = (
    "center_cover", "mondrian", "kmember", "mst_forest", "datafly",
    "sorted_chunk", "random_partition",
)


def comparison(
    table: Table,
    k: int,
    algorithms: dict[str, Callable[[], Anonymizer]] | None = None,
    backend: str | None = None,
    timeout: float | None = None,
    trace: bool | None = None,
    traces_out: dict[str, dict] | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
) -> dict[str, int]:
    """Suppressed-cell counts per algorithm — one row of the E8 table.

    The default line-up is resolved through the registry
    (:data:`DEFAULT_COMPARISON_ALGORITHMS`); pass a ``{name: factory}``
    dict to override it (factories must be picklable for ``jobs > 1``).
    ``backend`` / ``timeout`` / ``trace`` apply per call without
    mutating the constructed anonymizers; pass a dict as *traces_out*
    to collect each algorithm's run trace under its name.
    """
    if algorithms is None:
        algorithms = {
            name: registry.get(name).cls
            for name in DEFAULT_COMPARISON_ALGORITHMS
        }
    names = list(algorithms)
    costs: dict[str, int] = {}
    pending: list[str] = []
    for name in names:
        key = f"algorithm-{name}"
        if store is not None and store.done(key):
            store.check_instance(key, table_hash(table))
            costs[name] = store.get(key)["cost"]
            continue
        pending.append(name)

    tasks = [
        _ComparisonTask(table=table, k=k, name=name,
                        factory=algorithms[name], backend=backend,
                        timeout=timeout, trace=trace)
        for name in pending
    ]
    for name, outcome in zip(pending,
                             run_tasks(_comparison_cell, tasks, jobs)):
        costs[name] = outcome["cost"]
        if traces_out is not None and outcome["trace"] is not None:
            traces_out[name] = outcome["trace"]
        if store is not None:
            store.record(
                f"algorithm-{name}",
                **{key: value for key, value in outcome.items()
                   if key != "trace"},
                trace_summary=summarize_traces(
                    [outcome["trace"]] if outcome["trace"] else []
                ),
            )
    # report in the caller's order regardless of completion order
    return {name: costs[name] for name in names}
