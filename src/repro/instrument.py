"""Observability and robustness for anonymization runs.

Two orthogonal concerns, one per-call context:

* **Tracing** — a :class:`Run` collects structured events while an
  :class:`~repro.algorithms.base.Anonymizer` works: named phase timers
  (``cover``, ``reduce``, ``search``, ...), algorithm counters (rounds,
  moves, nodes expanded), and the per-call deltas of the shared
  :class:`~repro.core.backend.DistanceBackend` operation counters.  The
  finished :class:`RunTrace` is attached to
  ``AnonymizationResult.extras["trace"]`` as a plain JSON-serializable
  dict.  Tracing is off by default (near-zero overhead: one timestamp
  pair per call); switch it on per process with ``REPRO_TRACE=1``, per
  anonymizer with ``trace=True``, or per call with
  ``anonymize(..., trace=True)``.

* **Deadlines** — a :class:`TimeBudget` carries a wall-clock allowance.
  The iterative algorithms (local search, simulated annealing, branch
  and bound) check it at loop granularity and degrade gracefully on
  expiry: they stop searching and return the best valid k-anonymous
  release found so far, with ``extras["deadline_hit"]`` set.  The exact
  solvers, which have no feasible incumbent mid-flight, raise the typed
  :class:`BudgetExceededError` instead.

Both travel through the one :class:`Run` object the
:class:`~repro.algorithms.base.Anonymizer` template method hands to
every ``_anonymize`` implementation, so a budget works even with
tracing off and vice versa.

>>> budget = TimeBudget(None)      # unlimited
>>> budget.expired()
False
>>> TimeBudget(0.0).expired()      # zero allowance: expired at first check
True
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any


class BudgetExceededError(TimeoutError):
    """A wall-clock budget expired and no feasible incumbent exists.

    Raised by the exact solvers (subset DP, multiplicity-vector DP) when
    their :class:`TimeBudget` runs out: unlike the metaheuristics they
    hold no valid k-anonymous release mid-computation, so graceful
    degradation is impossible and the caller must be told.
    """


class TimeBudget:
    """A wall-clock allowance, checked at loop granularity.

    :param seconds: allowance in seconds; ``None`` means unlimited.

    The clock is *lazy*: it starts at the first check (or explicit
    :meth:`start`), not at construction, so a budget created ahead of
    time measures the work, not the setup.  The
    :class:`~repro.algorithms.base.Anonymizer` template starts it on
    entry to ``anonymize``.  Starting is idempotent, which lets a
    wrapper algorithm share one deadline with the algorithms it calls;
    :meth:`reset` re-arms a budget for reuse across calls.

    >>> TimeBudget(10.0).expired()
    False
    >>> TimeBudget(0).remaining()
    0.0
    """

    __slots__ = ("seconds", "_deadline")

    def __init__(self, seconds: float | None = None):
        if seconds is not None and seconds < 0:
            raise ValueError("a time budget cannot be negative")
        self.seconds = None if seconds is None else float(seconds)
        self._deadline: float | None = None

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        """A budget that never expires."""
        return cls(None)

    @property
    def limited(self) -> bool:
        """True iff this budget can ever expire."""
        return self.seconds is not None

    def start(self) -> "TimeBudget":
        """Arm the clock now (idempotent: a running clock is kept)."""
        if self.seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.seconds
        return self

    def reset(self) -> "TimeBudget":
        """Disarm the clock so the next check restarts the allowance."""
        self._deadline = None
        return self

    def expired(self) -> bool:
        """True iff the allowance is spent.  O(1); safe in hot loops."""
        if self.seconds is None:
            return False
        if self._deadline is None:
            self.start()
        return time.monotonic() >= self._deadline

    def remaining(self) -> float | None:
        """Seconds left (never negative), or ``None`` when unlimited."""
        if self.seconds is None:
            return None
        if self._deadline is None:
            self.start()
        return max(0.0, self._deadline - time.monotonic())

    def check(self, what: str = "computation") -> None:
        """Raise :class:`BudgetExceededError` if the allowance is spent."""
        if self.expired():
            raise BudgetExceededError(
                f"{what} exceeded its {self.seconds:g}s time budget"
            )

    def __repr__(self) -> str:
        if self.seconds is None:
            return "TimeBudget(unlimited)"
        return f"TimeBudget({self.seconds:g}s)"


@dataclass(frozen=True)
class Backoff:
    """An exponential backoff schedule with jitter for retry loops.

    :meth:`delay` for attempt *a* grows geometrically from *base* by
    *factor*, saturates at *maximum*, and is then scattered downward by
    up to ``jitter`` (a fraction of the raw delay, drawn uniformly) so
    a fleet of clients retrying after one server hiccup doesn't
    reconnect in lockstep.  Pass a seeded :class:`random.Random` for
    deterministic schedules in tests.

    Used by :class:`repro.service.client.ServiceClient` between
    reconnect attempts; transport-agnostic on purpose.

    >>> schedule = Backoff(base=0.1, factor=2.0, maximum=1.0, jitter=0.0)
    >>> [round(schedule.delay(a), 3) for a in range(5)]
    [0.1, 0.2, 0.4, 0.8, 1.0]
    >>> jittered = Backoff(base=0.1, maximum=1.0, jitter=0.5)
    >>> all(0.05 <= jittered.delay(0, random.Random(s)) <= 0.1
    ...     for s in range(20))
    True
    """

    base: float = 0.05
    factor: float = 2.0
    maximum: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base delay cannot be negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (delays may not shrink)")
        if self.maximum < self.base:
            raise ValueError("maximum cannot undercut the base delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter is a fraction in [0, 1]")

    def delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        """Seconds to sleep before retry *attempt* (0-based)."""
        if attempt < 0:
            raise ValueError("attempt is a 0-based retry index")
        raw = min(self.maximum, self.base * self.factor ** attempt)
        if not self.jitter:
            return raw
        draw = (rng or random).random()
        return raw * (1.0 - self.jitter * draw)


class Counters:
    """A named bag of monotonically growing integer counters.

    The observability primitive shared by the long-running service
    components (the shard router keeps its routing / failover /
    health-check tallies in one): declare the counter names up front so
    the stats payload has a stable shape from the first request, bump
    them from anywhere, and snapshot the whole bag JSON-ready with
    :meth:`as_dict`.  Undeclared names spring into existence on first
    use, so call sites never have to pre-register one-off counters.

    >>> counters = Counters("routed", "failovers")
    >>> counters.bump("routed")
    1
    >>> counters.bump("routed", 2)
    3
    >>> counters["failovers"]
    0
    >>> counters.as_dict()
    {'failovers': 0, 'routed': 3}
    """

    __slots__ = ("_counts",)

    def __init__(self, *names: str):
        self._counts: dict[str, int] = {name: 0 for name in names}

    def bump(self, name: str, by: int = 1) -> int:
        """Increase *name* by *by* (default 1); returns the new value."""
        if by < 0:
            raise ValueError("counters only grow; use a second counter")
        value = self._counts.get(name, 0) + by
        self._counts[name] = value
        return value

    def __getitem__(self, name: str) -> int:
        """Current value of *name* (0 when never bumped)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """JSON-ready snapshot, sorted by counter name."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value}" for name, value in sorted(self._counts.items())
        )
        return f"Counters({inner})"


def as_budget(value: "TimeBudget | float | int | None") -> TimeBudget:
    """Coerce ``None`` / seconds / an existing budget into a TimeBudget.

    Numbers yield a *fresh* budget (no state shared between calls);
    an existing :class:`TimeBudget` instance is passed through so its
    deadline can be shared deliberately.
    """
    if value is None:
        return TimeBudget(None)
    if isinstance(value, TimeBudget):
        return value
    return TimeBudget(float(value))


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

_TRUTHY = ("1", "true", "yes", "on")


def tracing_default() -> bool:
    """Process-wide tracing default: the ``REPRO_TRACE`` env variable."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


@dataclass
class RunTrace:
    """The serializable record of one anonymization run.

    Attached to ``AnonymizationResult.extras["trace"]`` via
    :meth:`to_dict` (a plain dict, so it round-trips through
    ``json.dumps``).
    """

    algorithm: str
    k: int
    n_rows: int
    degree: int
    backend: str
    total_seconds: float
    budget_seconds: float | None = None
    deadline_hit: bool = False
    #: phase timers: name -> {"seconds": float, "calls": int}
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    #: algorithm counters: rounds, moves, nodes expanded, ...
    counters: dict[str, int] = field(default_factory=dict)
    #: per-call deltas of DistanceBackend.counters (distance work done)
    backend_counters: dict[str, int] = field(default_factory=dict)
    #: planner decision (``PlanDecision.to_dict()``) when the run was
    #: dispatched via ``algorithm="auto"``; None for direct calls
    plan: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-serializable dict (what lands in ``extras``)."""
        out = {
            "algorithm": self.algorithm,
            "k": self.k,
            "n_rows": self.n_rows,
            "degree": self.degree,
            "backend": self.backend,
            "total_seconds": self.total_seconds,
            "budget_seconds": self.budget_seconds,
            "deadline_hit": self.deadline_hit,
            "phases": {
                name: dict(entry) for name, entry in self.phases.items()
            },
            "counters": dict(self.counters),
            "backend_counters": dict(self.backend_counters),
        }
        if self.plan is not None:
            out["plan"] = dict(self.plan)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunTrace":
        """Rehydrate a trace from its :meth:`to_dict` form."""
        return cls(**data)


class _NullPhase:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _PhaseTimer:
    """Accumulating phase timer (re-enterable per name)."""

    __slots__ = ("_phases", "_name", "_t0")

    def __init__(self, phases: dict, name: str):
        self._phases = phases
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._t0
        entry = self._phases.get(self._name)
        if entry is None:
            self._phases[self._name] = {"seconds": elapsed, "calls": 1}
        else:
            entry["seconds"] += elapsed
            entry["calls"] += 1
        return False


class Run:
    """Per-``anonymize``-call context: resolved backend, budget, tracing.

    Created by the :class:`~repro.algorithms.base.Anonymizer` template
    method and handed to every ``_anonymize`` implementation.  The
    algorithm reads :attr:`backend` for metric work, polls
    :attr:`budget` (``run.budget.expired()``) at loop granularity, and
    reports what it did through :meth:`phase`, :meth:`count`, and
    :meth:`mark_deadline_hit`.
    """

    __slots__ = (
        "algorithm", "k", "backend", "budget", "enabled",
        "_n_rows", "_degree", "_t0", "_baseline",
        "_phases", "_counters", "_deadline_hit", "_plan",
    )

    def __init__(
        self,
        algorithm: str,
        k: int,
        backend,
        budget: TimeBudget,
        enabled: bool,
    ):
        self.algorithm = algorithm
        self.k = k
        self.backend = backend
        self.budget = budget
        self.enabled = enabled
        self._deadline_hit = False
        self._plan: dict[str, Any] | None = None
        self._phases: dict[str, dict[str, float]] = {}
        self._counters: dict[str, int] = {}

    @classmethod
    def start(
        cls,
        algorithm: str,
        k: int,
        table,
        backend,
        budget: "TimeBudget | float | int | None" = None,
        trace: bool | None = None,
    ) -> "Run":
        """Begin a run: arm the budget, snapshot the backend counters."""
        run = cls(
            algorithm=algorithm,
            k=k,
            backend=backend,
            budget=as_budget(budget).start(),
            enabled=tracing_default() if trace is None else bool(trace),
        )
        run._n_rows = table.n_rows
        run._degree = table.degree
        run._baseline = dict(backend.counters) if run.enabled else None
        run._t0 = time.perf_counter()
        return run

    # -- what the algorithm reports ------------------------------------

    def phase(self, name: str):
        """Context manager timing one named phase (no-op when off)."""
        if not self.enabled:
            return _NULL_PHASE
        return _PhaseTimer(self._phases, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to a named counter (no-op when tracing is off)."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + n

    def expired(self) -> bool:
        """Shorthand for ``run.budget.expired()``."""
        return self.budget.expired()

    def mark_deadline_hit(self) -> None:
        """Record that the budget cut this run short (always tracked)."""
        self._deadline_hit = True

    def record_plan(self, plan: dict[str, Any]) -> None:
        """Attach a planner decision (``PlanDecision.to_dict()`` form)
        so it lands in the run trace (always kept — the decision is an
        input of the run, not a measurement)."""
        self._plan = plan

    @property
    def deadline_hit(self) -> bool:
        return self._deadline_hit

    # -- finishing -----------------------------------------------------

    def build_trace(self) -> RunTrace:
        """The trace so far (phases, counters, backend deltas)."""
        baseline = self._baseline or {}
        deltas = {
            name: value - baseline.get(name, 0)
            for name, value in self.backend.counters.items()
        }
        return RunTrace(
            algorithm=self.algorithm,
            k=self.k,
            n_rows=self._n_rows,
            degree=self._degree,
            backend=self.backend.name,
            total_seconds=time.perf_counter() - self._t0,
            budget_seconds=self.budget.seconds,
            deadline_hit=self._deadline_hit,
            phases=self._phases,
            counters=self._counters,
            backend_counters=deltas,
            plan=self._plan,
        )

    def finish(self, result):
        """Stamp deadline/trace information onto a finished result."""
        if self._deadline_hit:
            result.extras["deadline_hit"] = True
        if self.enabled:
            result.extras["trace"] = self.build_trace().to_dict()
        return result

    def __repr__(self) -> str:
        return (
            f"Run({self.algorithm!r}, k={self.k}, "
            f"backend={self.backend.name}, budget={self.budget!r}, "
            f"tracing={'on' if self.enabled else 'off'})"
        )


def summarize_traces(traces) -> dict[str, Any] | None:
    """Aggregate ``to_dict()``-form traces into one compact summary.

    Used by the run-artifact store, the parallel experiment runners, and
    the anonymization service's ``stats`` endpoint: per-run traces merge
    into total wall-clock seconds, summed algorithm/backend counters,
    accumulated per-phase timings, and a deadline-hit count.  Returns
    ``None`` for an empty input so callers can store the absence of
    tracing as JSON ``null``.

    >>> summarize_traces([]) is None
    True
    >>> summary = summarize_traces([
    ...     {"total_seconds": 0.5, "deadline_hit": False,
    ...      "phases": {"cover": {"seconds": 0.4, "calls": 1}},
    ...      "counters": {"rounds": 2}, "backend_counters": {"dist": 10}},
    ...     {"total_seconds": 0.25, "deadline_hit": True,
    ...      "phases": {"cover": {"seconds": 0.2, "calls": 2}},
    ...      "counters": {"rounds": 3}, "backend_counters": {"dist": 5}},
    ... ])
    >>> summary["runs"], summary["total_seconds"], summary["deadline_hits"]
    (2, 0.75, 1)
    >>> summary["counters"]["rounds"], summary["backend_counters"]["dist"]
    (5, 15)
    >>> summary["phases"]["cover"]
    {'seconds': 0.6000000000000001, 'calls': 3}
    """
    traces = list(traces)
    if not traces:
        return None
    counters: dict[str, int] = {}
    backend_counters: dict[str, int] = {}
    phases: dict[str, dict[str, float]] = {}
    total = 0.0
    deadline_hits = 0
    for trace in traces:
        total += float(trace.get("total_seconds", 0.0))
        deadline_hits += bool(trace.get("deadline_hit"))
        for name, value in trace.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in trace.get("backend_counters", {}).items():
            backend_counters[name] = backend_counters.get(name, 0) + int(value)
        for name, entry in trace.get("phases", {}).items():
            merged = phases.setdefault(name, {"seconds": 0.0, "calls": 0})
            merged["seconds"] += float(entry.get("seconds", 0.0))
            merged["calls"] += int(entry.get("calls", 0))
    return {
        "runs": len(traces),
        "total_seconds": total,
        "deadline_hits": deadline_hits,
        "phases": phases,
        "counters": counters,
        "backend_counters": backend_counters,
    }


def format_trace(trace: dict[str, Any]) -> str:
    """Human-readable multi-line summary of a ``to_dict()``-form trace.

    >>> print(format_trace({
    ...     "algorithm": "center_cover", "k": 3, "n_rows": 10, "degree": 4,
    ...     "backend": "python", "total_seconds": 0.0125,
    ...     "budget_seconds": None, "deadline_hit": False,
    ...     "phases": {"cover": {"seconds": 0.01, "calls": 1}},
    ...     "counters": {}, "backend_counters": {"matrix_rows": 10},
    ... }))
    trace: center_cover k=3 on 10x4 [python] in 0.0125s
      phase cover: 0.0100s (1 call)
      backend matrix_rows: 10
    """
    lines = [
        f"trace: {trace['algorithm']} k={trace['k']} on "
        f"{trace['n_rows']}x{trace['degree']} [{trace['backend']}] "
        f"in {trace['total_seconds']:.4f}s"
    ]
    if trace.get("budget_seconds") is not None:
        hit = " (deadline hit)" if trace.get("deadline_hit") else ""
        lines.append(f"  budget: {trace['budget_seconds']:g}s{hit}")
    for name, entry in trace.get("phases", {}).items():
        calls = int(entry["calls"])
        plural = "call" if calls == 1 else "calls"
        lines.append(
            f"  phase {name}: {entry['seconds']:.4f}s ({calls} {plural})"
        )
    for name, value in trace.get("counters", {}).items():
        lines.append(f"  {name}: {value}")
    for name, value in trace.get("backend_counters", {}).items():
        if value:
            lines.append(f"  backend {name}: {value}")
    return "\n".join(lines)
