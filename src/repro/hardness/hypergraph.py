"""k-uniform hypergraphs for the Section 3 reductions.

Vertices are ``0 .. n_vertices - 1``; edges are frozensets of vertices.
The reductions require *simple* hypergraphs ("no repeated edges in its
description"), which :meth:`Hypergraph.is_simple` checks and the
constructor can enforce.
"""

from __future__ import annotations

from collections.abc import Iterable


class Hypergraph:
    """A hypergraph H = (U, E) with indexed edges.

    :param n_vertices: ``|U|``; vertices are the integers ``0..n-1``.
    :param edges: iterable of vertex collections; order is preserved
        (edge ``j`` maps to attribute ``j`` in the reductions).
    :param require_simple: reject duplicate edges at construction.

    >>> h = Hypergraph(6, [{0, 1, 2}, {3, 4, 5}, {0, 3, 4}])
    >>> h.is_uniform(3), h.is_simple()
    (True, True)
    """

    __slots__ = ("_n", "_edges", "_incidence")

    def __init__(
        self,
        n_vertices: int,
        edges: Iterable[Iterable[int]],
        require_simple: bool = True,
    ):
        if n_vertices < 0:
            raise ValueError("vertex count must be non-negative")
        self._n = n_vertices
        self._edges: tuple[frozenset[int], ...] = tuple(
            frozenset(edge) for edge in edges
        )
        for j, edge in enumerate(self._edges):
            if not edge:
                raise ValueError(f"edge {j} is empty")
            if not all(0 <= u < n_vertices for u in edge):
                raise ValueError(f"edge {j} has out-of-range vertices")
        if require_simple and not self.is_simple():
            raise ValueError("hypergraph has repeated edges")
        incidence: list[list[int]] = [[] for _ in range(n_vertices)]
        for j, edge in enumerate(self._edges):
            for u in edge:
                incidence[u].append(j)
        self._incidence = tuple(tuple(js) for js in incidence)

    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> tuple[frozenset[int], ...]:
        return self._edges

    def edge(self, j: int) -> frozenset[int]:
        return self._edges[j]

    def incident_edges(self, vertex: int) -> tuple[int, ...]:
        """Indices of the edges containing *vertex*."""
        return self._incidence[vertex]

    def degree(self, vertex: int) -> int:
        return len(self._incidence[vertex])

    # ------------------------------------------------------------------

    def is_uniform(self, k: int) -> bool:
        """True iff every edge has exactly *k* vertices."""
        return all(len(edge) == k for edge in self._edges)

    def is_simple(self) -> bool:
        """True iff no edge is repeated."""
        return len(set(self._edges)) == len(self._edges)

    def isolated_vertices(self) -> list[int]:
        """Vertices contained in no edge (they doom any perfect matching)."""
        return [u for u in range(self._n) if not self._incidence[u]]

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Hypergraph(n_vertices={self._n}, n_edges={len(self._edges)})"
