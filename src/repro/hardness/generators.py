"""Hypergraph instance generators with known matching status.

The reductions map *from* an NP-hard problem, so experiment ground truth
comes from construction: planted instances contain a perfect matching by
design; matchless instances carry a simple combinatorial obstruction
(every edge shares a common vertex, so no two edges are disjoint and any
matching has at most one edge).
"""

from __future__ import annotations

import numpy as np

from repro.hardness.hypergraph import Hypergraph


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def planted_matching_hypergraph(
    n_groups: int,
    k: int,
    extra_edges: int = 0,
    seed: int | np.random.Generator = 0,
) -> tuple[Hypergraph, list[int]]:
    """A simple k-uniform hypergraph with a planted perfect matching.

    ``n_groups * k`` vertices are randomly permuted and cut into
    ``n_groups`` disjoint planted edges; *extra_edges* additional random
    distinct edges are mixed in, and the edge order is shuffled.

    :returns: ``(hypergraph, planted_edge_indices)``.

    >>> h, planted = planted_matching_hypergraph(2, 3, extra_edges=2, seed=1)
    >>> h.n_vertices, h.n_edges, len(planted)
    (6, 4, 2)
    """
    if n_groups < 1 or k < 2:
        raise ValueError("need at least one group and k >= 2")
    rng = _rng(seed)
    n = n_groups * k
    order = rng.permutation(n)
    planted = [frozenset(int(v) for v in order[g * k:(g + 1) * k])
               for g in range(n_groups)]
    edges: set[frozenset[int]] = set(planted)
    attempts = 0
    while len(edges) < n_groups + extra_edges:
        attempts += 1
        if attempts > 1000 * (extra_edges + 1):
            raise ValueError(
                f"cannot place {extra_edges} distinct extra edges on "
                f"{n} vertices"
            )
        candidate = frozenset(int(v) for v in rng.choice(n, size=k, replace=False))
        edges.add(candidate)
    shuffled = list(edges)
    perm = rng.permutation(len(shuffled))
    ordered = [shuffled[int(p)] for p in perm]
    graph = Hypergraph(n, ordered)
    planted_set = set(planted)
    planted_indices = [j for j, e in enumerate(ordered) if e in planted_set]
    return graph, planted_indices


def random_hypergraph(
    n_vertices: int,
    n_edges: int,
    k: int,
    seed: int | np.random.Generator = 0,
) -> Hypergraph:
    """A simple k-uniform hypergraph with distinct uniformly random edges.

    May or may not have a perfect matching — pair with
    :func:`repro.hardness.matching.find_perfect_matching` for ground truth.
    """
    if k > n_vertices:
        raise ValueError("edges cannot exceed the vertex count")
    rng = _rng(seed)
    edges: set[frozenset[int]] = set()
    attempts = 0
    while len(edges) < n_edges:
        attempts += 1
        if attempts > 1000 * (n_edges + 1):
            raise ValueError(
                f"cannot place {n_edges} distinct edges of size {k} on "
                f"{n_vertices} vertices"
            )
        edges.add(
            frozenset(int(v) for v in rng.choice(n_vertices, size=k, replace=False))
        )
    ordered = sorted(edges, key=sorted)
    return Hypergraph(n_vertices, ordered)


def matchless_hypergraph(
    n_groups: int,
    k: int,
    n_edges: int,
    seed: int | np.random.Generator = 0,
) -> Hypergraph:
    """A k-uniform hypergraph with **no** perfect matching, by design.

    Every edge contains vertex 0, so edges pairwise intersect and any
    matching has at most one edge; a perfect matching needs
    ``n_groups >= 2`` of them.  Every vertex is covered by some edge, so
    the obstruction is genuinely combinatorial, not a dangling vertex.

    :raises ValueError: if ``n_groups < 2`` (one edge could be perfect).
    """
    if n_groups < 2:
        raise ValueError("need n_groups >= 2 for the obstruction to bite")
    if k < 2:
        raise ValueError("k must be at least 2")
    rng = _rng(seed)
    n = n_groups * k
    others = list(range(1, n))
    edges: set[frozenset[int]] = set()
    # First cover all non-zero vertices deterministically...
    for start in range(0, len(others), k - 1):
        block = others[start:start + k - 1]
        while len(block) < k - 1:
            block.append(others[(start + len(block)) % len(others)])
        edges.add(frozenset([0, *block]))
    # ...then pad with random vertex-0 edges.
    attempts = 0
    while len(edges) < n_edges:
        attempts += 1
        if attempts > 1000 * (n_edges + 1):
            break
        rest = rng.choice(others, size=k - 1, replace=False)
        edges.add(frozenset([0, *(int(v) for v in rest)]))
    ordered = sorted(edges, key=sorted)
    return Hypergraph(n, ordered)
