"""Hardness substrate: hypergraphs, perfect matching, and the Section 3
reductions from k-dimensional perfect matching to k-anonymity problems.
"""

from repro.hardness.generators import (
    matchless_hypergraph,
    planted_matching_hypergraph,
    random_hypergraph,
)
from repro.hardness.hypergraph import Hypergraph
from repro.hardness.matching import (
    find_perfect_matching,
    greedy_matching,
    has_perfect_matching,
    is_perfect_matching,
)
from repro.hardness.reductions import (
    AttributeSuppressionReduction,
    EntrySuppressionReduction,
)
from repro.hardness.sat import (
    Cnf,
    is_satisfiable,
    planted_satisfiable_cnf,
    random_three_cnf,
    solve_sat,
    unsatisfiable_cnf,
)
from repro.hardness.sat_reduction import ThreeSatToMatchingReduction

__all__ = [
    "AttributeSuppressionReduction",
    "Cnf",
    "EntrySuppressionReduction",
    "Hypergraph",
    "ThreeSatToMatchingReduction",
    "is_satisfiable",
    "planted_satisfiable_cnf",
    "random_three_cnf",
    "solve_sat",
    "unsatisfiable_cnf",
    "find_perfect_matching",
    "greedy_matching",
    "has_perfect_matching",
    "is_perfect_matching",
    "matchless_hypergraph",
    "planted_matching_hypergraph",
    "random_hypergraph",
]
