"""3SAT -> 3-DIMENSIONAL MATCHING (Garey & Johnson), completing the
hardness chain 3SAT -> 3DM -> k-ANONYMITY end to end.

The paper reduces from k-dimensional perfect matching; that problem's
own NP-hardness is the classical Garey-Johnson construction from 3SAT.
This module implements it, so the repository demonstrates the *entire*
chain as executable code: a CNF formula becomes a 3-uniform hypergraph
(satisfiable iff a perfect matching exists), which
:class:`repro.hardness.reductions.EntrySuppressionReduction` then turns
into a k-anonymity instance whose optimum hits ``n(m-1)`` iff the
formula is satisfiable.

Construction (for a formula with ``n`` variables and ``m`` clauses):

* **variable rings** — variable ``x`` gets a cycle of ``2m`` private
  core elements and ``2m`` tip elements ``t_x[j]``, ``f_x[j]``; the
  only ways to cover the ring are "all T-triples" (covering the t-tips,
  encoding ``x = False``) or "all F-triples" (covering the f-tips,
  encoding ``x = True``);
* **clause gadgets** — clause ``j`` has two private elements matched by
  exactly one triple per literal, consuming the corresponding free tip;
* **garbage collection** — ``m(n-1)`` private pairs, each matchable
  with any tip, absorb the tips neither side used.

Total elements: ``6nm``; a perfect matching has ``2nm`` triples.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.hardness.hypergraph import Hypergraph
from repro.hardness.sat import Cnf


class ThreeSatToMatchingReduction:
    """Executable Garey-Johnson reduction with two-way certificates.

    >>> from repro.hardness.sat import Cnf
    >>> red = ThreeSatToMatchingReduction(Cnf(1, [(1,), (-1,)]))
    >>> from repro.hardness.matching import has_perfect_matching
    >>> has_perfect_matching(red.hypergraph)   # x and not-x: UNSAT
    False
    """

    def __init__(self, formula: Cnf):
        if formula.n_vars < 1 or formula.n_clauses < 1:
            raise ValueError("need at least one variable and one clause")
        self.formula = formula
        n, m = formula.n_vars, formula.n_clauses

        # ---- element numbering -------------------------------------
        self._names: list[tuple] = []
        self._ids: dict[tuple, int] = {}

        def element(*name) -> int:
            key = tuple(name)
            if key not in self._ids:
                self._ids[key] = len(self._names)
                self._names.append(key)
            return self._ids[key]

        for x in range(1, n + 1):
            for p in range(2 * m):
                element("core", x, p)
            for j in range(m):
                element("tip_t", x, j)
                element("tip_f", x, j)
        for j in range(m):
            element("s1", j)
            element("s2", j)
        for q in range(m * (n - 1)):
            element("g1", q)
            element("g2", q)

        # ---- triples ------------------------------------------------
        edges: list[frozenset[int]] = []
        edge_index: dict[frozenset[int], int] = {}

        def add_edge(members: Iterable[int]) -> int:
            edge = frozenset(members)
            if edge not in edge_index:
                edge_index[edge] = len(edges)
                edges.append(edge)
            return edge_index[edge]

        #: edge index of variable x's T-triple (resp. F-triple) at slot j
        self.t_triple: dict[tuple[int, int], int] = {}
        self.f_triple: dict[tuple[int, int], int] = {}
        for x in range(1, n + 1):
            for j in range(m):
                self.t_triple[(x, j)] = add_edge([
                    element("core", x, 2 * j),
                    element("core", x, 2 * j + 1),
                    element("tip_t", x, j),
                ])
                self.f_triple[(x, j)] = add_edge([
                    element("core", x, 2 * j + 1),
                    element("core", x, (2 * j + 2) % (2 * m)),
                    element("tip_f", x, j),
                ])

        #: clause j, literal position p -> edge index
        self.clause_triples: dict[tuple[int, int], int] = {}
        for j, clause in enumerate(formula.clauses):
            for p, literal in enumerate(clause):
                x = abs(literal)
                tip = (
                    element("tip_t", x, j) if literal > 0
                    else element("tip_f", x, j)
                )
                self.clause_triples[(j, p)] = add_edge(
                    [element("s1", j), element("s2", j), tip]
                )

        #: garbage slot q, tip element -> edge index
        self.garbage_triples: dict[tuple[int, int], int] = {}
        tips = [
            self._ids[key] for key in self._names
            if key[0] in ("tip_t", "tip_f")
        ]
        for q in range(m * (n - 1)):
            for tip in tips:
                self.garbage_triples[(q, tip)] = add_edge(
                    [element("g1", q), element("g2", q), tip]
                )

        self.hypergraph = Hypergraph(len(self._names), edges)
        self._element = dict(self._ids)

    # ------------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        return self.hypergraph.n_vertices

    def element_id(self, *name) -> int:
        """Look up an element id by its structured name."""
        return self._element[tuple(name)]

    def element_name(self, element: int) -> tuple:
        """Inverse of :meth:`element_id`."""
        return self._names[element]

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------

    def matching_from_assignment(self, assignment: Sequence[bool]) -> list[int]:
        """Forward certificate: a satisfying assignment -> perfect matching.

        :raises ValueError: if *assignment* does not satisfy the formula.
        """
        formula = self.formula
        if len(assignment) != formula.n_vars:
            raise ValueError("one truth value per variable required")
        if not formula.evaluate(assignment):
            raise ValueError("assignment does not satisfy the formula")
        n, m = formula.n_vars, formula.n_clauses
        matching: list[int] = []
        free_tips: list[int] = []
        # variable rings: x True -> F-triples (t-tips stay free)
        for x in range(1, n + 1):
            true = assignment[x - 1]
            for j in range(m):
                if true:
                    matching.append(self.f_triple[(x, j)])
                    free_tips.append(self.element_id("tip_t", x, j))
                else:
                    matching.append(self.t_triple[(x, j)])
                    free_tips.append(self.element_id("tip_f", x, j))
        # clauses: pick the first literal made true
        used_tips: set[int] = set()
        for j, clause in enumerate(formula.clauses):
            for p, literal in enumerate(clause):
                value = assignment[abs(literal) - 1]
                if (literal > 0) == value:
                    edge = self.hypergraph.edge(self.clause_triples[(j, p)])
                    tip = next(
                        e for e in edge
                        if self._names[e][0] in ("tip_t", "tip_f")
                    )
                    if tip in used_tips:
                        continue  # same tip already consumed (dup literal)
                    matching.append(self.clause_triples[(j, p)])
                    used_tips.add(tip)
                    break
            else:
                raise AssertionError("satisfied clause has a true literal")
        # garbage: absorb the remaining free tips
        remaining = [tip for tip in free_tips if tip not in used_tips]
        assert len(remaining) == m * (n - 1)
        for q, tip in enumerate(remaining):
            matching.append(self.garbage_triples[(q, tip)])
        return matching

    def assignment_from_matching(self, matching: Iterable[int]) -> list[bool]:
        """Backward certificate: perfect matching -> satisfying assignment.

        :raises ValueError: if the edges are not a perfect matching, or
            violate the gadget structure.
        """
        from repro.hardness.matching import is_perfect_matching

        matching = list(matching)
        if not is_perfect_matching(self.hypergraph, matching):
            raise ValueError("not a perfect matching of the gadget graph")
        chosen = set(matching)
        n, m = self.formula.n_vars, self.formula.n_clauses
        assignment: list[bool] = []
        for x in range(1, n + 1):
            f_selected = all(self.f_triple[(x, j)] in chosen for j in range(m))
            t_selected = all(self.t_triple[(x, j)] in chosen for j in range(m))
            if f_selected == t_selected:
                raise ValueError(
                    f"variable {x}'s ring is not covered consistently"
                )
            assignment.append(f_selected)  # F-triples chosen <=> x True
        if not self.formula.evaluate(assignment):
            raise AssertionError(
                "gadget structure guarantees a satisfying assignment"
            )
        return assignment
