"""Perfect matchings in k-uniform hypergraphs.

k-DIMENSIONAL PERFECT MATCHING is the NP-hard source problem of both
Section 3 reductions, so experiments need ground truth: an exact solver
for small instances (backtracking over the lowest uncovered vertex, with
memoization on the covered-set bitmask) plus a fast greedy heuristic.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hardness.hypergraph import Hypergraph


def is_perfect_matching(graph: Hypergraph, edge_indices: Iterable[int]) -> bool:
    """True iff the indexed edges cover every vertex exactly once."""
    covered: set[int] = set()
    total = 0
    for j in edge_indices:
        edge = graph.edge(j)
        total += len(edge)
        covered |= edge
    return total == graph.n_vertices and covered == set(range(graph.n_vertices))


def find_perfect_matching(graph: Hypergraph) -> list[int] | None:
    """An exact perfect matching, or None if none exists.

    Backtracking on the lowest uncovered vertex; states (covered-vertex
    bitmasks) that failed once are memoized so they are never re-explored.
    Worst-case exponential (the problem is NP-hard for k >= 3) but fast on
    the reduction-scale instances the benchmarks use (n <= ~30).

    >>> h = Hypergraph(6, [{0, 1, 2}, {1, 2, 3}, {3, 4, 5}])
    >>> find_perfect_matching(h)
    [0, 2]
    """
    n = graph.n_vertices
    if n == 0:
        return []
    if graph.isolated_vertices():
        return None
    edge_masks = [
        sum(1 << u for u in edge) for edge in graph.edges
    ]
    full = (1 << n) - 1
    dead_states: set[int] = set()
    chosen: list[int] = []

    def backtrack(covered: int) -> bool:
        if covered == full:
            return True
        if covered in dead_states:
            return False
        lowest = 0
        while covered >> lowest & 1:
            lowest += 1
        for j in graph.incident_edges(lowest):
            mask = edge_masks[j]
            if covered & mask:
                continue
            chosen.append(j)
            if backtrack(covered | mask):
                return True
            chosen.pop()
        dead_states.add(covered)
        return False

    if backtrack(0):
        return chosen
    return None


def has_perfect_matching(graph: Hypergraph) -> bool:
    """Decision version of :func:`find_perfect_matching`."""
    return find_perfect_matching(graph) is not None


def greedy_matching(graph: Hypergraph) -> list[int]:
    """A maximal (not necessarily maximum) matching, greedily by index.

    Used as the cheap heuristic lower-bound in benchmark diagnostics; a
    greedy matching that happens to be perfect certifies the instance.
    """
    covered: set[int] = set()
    chosen: list[int] = []
    for j, edge in enumerate(graph.edges):
        if not (edge & covered):
            chosen.append(j)
            covered |= edge
    return chosen
