"""3-CNF formulas and a DPLL satisfiability solver.

The paper's reductions start from k-DIMENSIONAL PERFECT MATCHING, whose
own NP-hardness classically comes from 3SAT (Garey & Johnson).  To show
the full chain 3SAT -> 3DM -> k-ANONYMITY executing end to end, this
module supplies the SAT substrate: a small CNF representation, a DPLL
solver with unit propagation and pure-literal elimination (exact ground
truth for the chain experiments), and instance generators with known
satisfiability status.

Literals are non-zero integers: ``+v`` for variable ``v``, ``-v`` for
its negation (DIMACS convention).  Variables are ``1..n_vars``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class Cnf:
    """A CNF formula in DIMACS-style integer literals.

    >>> f = Cnf(2, [(1, 2), (-1, 2), (1, -2)])
    >>> f.n_vars, f.n_clauses
    (2, 3)
    """

    __slots__ = ("_n_vars", "_clauses")

    def __init__(self, n_vars: int, clauses: Iterable[Sequence[int]]):
        if n_vars < 0:
            raise ValueError("variable count must be non-negative")
        self._n_vars = n_vars
        cleaned = []
        for index, clause in enumerate(clauses):
            clause = tuple(clause)
            if not clause:
                raise ValueError(f"clause {index} is empty")
            for literal in clause:
                if literal == 0 or abs(literal) > n_vars:
                    raise ValueError(
                        f"clause {index} has out-of-range literal {literal}"
                    )
            cleaned.append(clause)
        self._clauses = tuple(cleaned)

    @property
    def n_vars(self) -> int:
        return self._n_vars

    @property
    def n_clauses(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> tuple[tuple[int, ...], ...]:
        return self._clauses

    def is_three_cnf(self) -> bool:
        """True iff every clause has at most 3 literals."""
        return all(len(clause) <= 3 for clause in self._clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate under a full assignment (index v-1 holds variable v)."""
        if len(assignment) != self._n_vars:
            raise ValueError("need one truth value per variable")

        def literal_true(literal: int) -> bool:
            value = assignment[abs(literal) - 1]
            return value if literal > 0 else not value

        return all(
            any(literal_true(lit) for lit in clause) for clause in self._clauses
        )

    # ------------------------------------------------------------------
    # DIMACS interchange
    # ------------------------------------------------------------------

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        """Parse DIMACS CNF text (comments ``c ...``, header ``p cnf``).

        >>> Cnf.from_dimacs("c demo\\np cnf 2 2\\n1 -2 0\\n2 0\\n").clauses
        ((1, -2), (2,))
        """
        n_vars: int | None = None
        clauses: list[tuple[int, ...]] = []
        current: list[int] = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS header: {line!r}")
                n_vars = int(parts[2])
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    if current:
                        clauses.append(tuple(current))
                        current = []
                else:
                    current.append(literal)
        if current:
            clauses.append(tuple(current))
        if n_vars is None:
            raise ValueError("missing DIMACS 'p cnf' header")
        return cls(n_vars, clauses)

    def to_dimacs(self, comment: str | None = None) -> str:
        """Serialize to DIMACS CNF text (round-trips with
        :meth:`from_dimacs`)."""
        lines = []
        if comment:
            lines.extend(f"c {line}" for line in comment.splitlines())
        lines.append(f"p cnf {self._n_vars} {self.n_clauses}")
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"Cnf(n_vars={self._n_vars}, n_clauses={self.n_clauses})"


def _simplify(
    clauses: list[tuple[int, ...]], assignment: dict[int, bool]
) -> list[tuple[int, ...]] | None:
    """Drop satisfied clauses and falsified literals; None on conflict."""
    out: list[tuple[int, ...]] = []
    for clause in clauses:
        kept: list[int] = []
        satisfied = False
        for literal in clause:
            var = abs(literal)
            if var in assignment:
                if (literal > 0) == assignment[var]:
                    satisfied = True
                    break
            else:
                kept.append(literal)
        if satisfied:
            continue
        if not kept:
            return None  # clause falsified
        out.append(tuple(kept))
    return out


def _dpll(
    clauses: list[tuple[int, ...]], assignment: dict[int, bool]
) -> dict[int, bool] | None:
    # unit propagation to fixpoint
    while True:
        simplified = _simplify(clauses, assignment)
        if simplified is None:
            return None
        clauses = simplified
        units = [clause[0] for clause in clauses if len(clause) == 1]
        if not units:
            break
        for literal in units:
            var, value = abs(literal), literal > 0
            if assignment.get(var, value) != value:
                return None
            assignment[var] = value
    if not clauses:
        return assignment
    # pure-literal elimination
    polarity: dict[int, set[bool]] = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    pures = {
        var: signs.copy().pop()
        for var, signs in polarity.items()
        if len(signs) == 1
    }
    if pures:
        assignment.update(pures)
        return _dpll(clauses, assignment)
    # branch on the most frequent variable
    counts: dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            counts[abs(literal)] = counts.get(abs(literal), 0) + 1
    branch_var = max(sorted(counts), key=lambda v: counts[v])
    for value in (True, False):
        trial = dict(assignment)
        trial[branch_var] = value
        solved = _dpll(clauses, trial)
        if solved is not None:
            return solved
    return None


def solve_sat(formula: Cnf) -> list[bool] | None:
    """DPLL with unit propagation and pure-literal elimination.

    :returns: a satisfying assignment (list of bools, index v-1 for
        variable v), or None if unsatisfiable.
    """
    solved = _dpll(list(formula.clauses), {})
    if solved is None:
        return None
    assignment = [solved.get(v, False) for v in range(1, formula.n_vars + 1)]
    assert formula.evaluate(assignment)
    return assignment


def is_satisfiable(formula: Cnf) -> bool:
    """Decision version of :func:`solve_sat`."""
    return solve_sat(formula) is not None


def random_three_cnf(
    n_vars: int,
    n_clauses: int,
    seed: int | np.random.Generator = 0,
) -> Cnf:
    """Uniform random 3-CNF (three distinct variables per clause)."""
    if n_vars < 3:
        raise ValueError("need at least 3 variables for 3-CNF clauses")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    clauses = []
    for _ in range(n_clauses):
        variables = rng.choice(np.arange(1, n_vars + 1), size=3, replace=False)
        signs = rng.integers(0, 2, size=3)
        clauses.append(
            tuple(int(v) if s else -int(v) for v, s in zip(variables, signs))
        )
    return Cnf(n_vars, clauses)


def planted_satisfiable_cnf(
    n_vars: int,
    n_clauses: int,
    seed: int | np.random.Generator = 0,
) -> tuple[Cnf, list[bool]]:
    """A random 3-CNF guaranteed satisfiable by a planted assignment.

    Each clause is resampled until it satisfies the hidden assignment,
    so the returned formula is satisfiable by construction.
    """
    if n_vars < 3:
        raise ValueError("need at least 3 variables for 3-CNF clauses")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    hidden = [bool(b) for b in rng.integers(0, 2, size=n_vars)]
    clauses = []
    while len(clauses) < n_clauses:
        variables = rng.choice(np.arange(1, n_vars + 1), size=3, replace=False)
        signs = rng.integers(0, 2, size=3)
        clause = tuple(
            int(v) if s else -int(v) for v, s in zip(variables, signs)
        )
        if any(
            (lit > 0) == hidden[abs(lit) - 1] for lit in clause
        ):
            clauses.append(clause)
    return Cnf(n_vars, clauses), hidden


def unsatisfiable_cnf() -> Cnf:
    """The canonical tiny UNSAT 3-CNF: all eight sign patterns over
    three variables (every assignment falsifies exactly one clause)."""
    clauses = []
    for s1 in (1, -1):
        for s2 in (1, -1):
            for s3 in (1, -1):
                clauses.append((s1 * 1, s2 * 2, s3 * 3))
    return Cnf(3, clauses)
