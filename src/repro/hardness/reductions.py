"""The Section 3 reductions, as executable, certificate-carrying objects.

Both reductions map a simple k-uniform hypergraph ``H = (U, E)`` with
``n = |U|`` vertices and ``m = |E|`` edges to a k-anonymity instance whose
optimal value hits a sharp threshold exactly when ``H`` has a perfect
matching:

* **Theorem 3.1** (entry suppression): build ``v_i[j] = 0`` if
  ``u_i ∈ e_j`` and a row-unique non-zero value otherwise (we use
  ``i + 1``; the paper's alphabet is ``{0, 1, ..., n}``).  Rows can then
  agree only on 0-cells, i.e. only via shared edges, and ``H`` has a
  perfect matching **iff** the table can be k-anonymized with at most
  ``n (m - 1)`` stars (each row keeps exactly the coordinate of its
  matching edge).

* **Theorem 3.2** (attribute suppression): ``v_i[j] = b1`` if
  ``u_i ∈ e_j`` else ``b0`` over a binary alphabet; suppressing an
  attribute is removing a hyperedge, and ``H`` has a perfect matching
  **iff** exactly ``m - n/k`` attributes suffice.

Each reduction carries *certificate extraction* in both directions, so
tests and benchmarks can round-trip: matching → cheap anonymization →
matching.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alphabet import STAR
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.hardness.hypergraph import Hypergraph
from repro.hardness.matching import is_perfect_matching


class EntrySuppressionReduction:
    """Theorem 3.1: k-dimensional perfect matching -> k-ANONYMITY.

    >>> h = Hypergraph(3, [{0, 1, 2}])
    >>> red = EntrySuppressionReduction(h, k=3)
    >>> red.table.rows
    ((0,), (0,), (0,))
    >>> red.threshold
    0
    """

    def __init__(self, graph: Hypergraph, k: int):
        if k < 3:
            raise ValueError("Theorem 3.1 applies for k >= 3")
        if not graph.is_uniform(k):
            raise ValueError(f"hypergraph must be {k}-uniform")
        if not graph.is_simple():
            raise ValueError("hypergraph must be simple")
        self.graph = graph
        self.k = k
        n, m = graph.n_vertices, graph.n_edges
        rows = []
        for i in range(n):
            incident = set(graph.incident_edges(i))
            rows.append(
                tuple(0 if j in incident else i + 1 for j in range(m))
            )
        #: the derived k-anonymity instance
        self.table = Table(rows, attributes=[f"e{j}" for j in range(m)])
        #: l in the decision problem: n * (m - 1) suppressed cells
        self.threshold = n * (m - 1)

    # ------------------------------------------------------------------

    def suppressor_from_matching(self, matching: Iterable[int]) -> Suppressor:
        """Forward certificate: a matching yields a k-anonymizer with
        exactly ``threshold`` stars (each row keeps only its matched
        edge's coordinate).

        :raises ValueError: if *matching* is not a perfect matching.
        """
        matching = list(matching)
        if not is_perfect_matching(self.graph, matching):
            raise ValueError("not a perfect matching of the source hypergraph")
        edge_of_vertex: dict[int, int] = {}
        for j in matching:
            for u in self.graph.edge(j):
                edge_of_vertex[u] = j
        m = self.graph.n_edges
        starred = {
            i: [j for j in range(m) if j != edge_of_vertex[i]]
            for i in range(self.graph.n_vertices)
        }
        return Suppressor(starred, n_rows=self.graph.n_vertices, degree=m)

    def matching_from_anonymized(self, anonymized: Table) -> list[int]:
        """Backward certificate: a k-anonymous suppression with at most
        ``threshold`` stars encodes a perfect matching (the proof of
        Theorem 3.1's converse direction, executed).

        :raises ValueError: if the table does not meet the threshold
            structure (some row with != 1 surviving cell, or a surviving
            non-zero cell, or the extracted edges not a matching).
        """
        if anonymized.n_rows != self.graph.n_vertices:
            raise ValueError("row count mismatch")
        edges: set[int] = set()
        for i, row in enumerate(anonymized.rows):
            kept = [j for j, value in enumerate(row) if value is not STAR]
            if len(kept) != 1:
                raise ValueError(
                    f"row {i} keeps {len(kept)} cells; the threshold "
                    "structure requires exactly one"
                )
            j = kept[0]
            if row[j] != 0:
                raise ValueError(
                    f"row {i} kept a non-zero cell; it matches no other row"
                )
            edges.add(j)
        matching = sorted(edges)
        if not is_perfect_matching(self.graph, matching):
            raise ValueError("extracted edges do not form a perfect matching")
        return matching

    def anonymize_from_matching(self, matching: Iterable[int]) -> Table:
        """The anonymized table induced by a perfect matching."""
        return self.suppressor_from_matching(matching).apply(self.table)


class AttributeSuppressionReduction:
    """Theorem 3.2: k-dimensional perfect matching -> attribute version.

    Binary alphabet ``{b0, b1}`` (0/1 by default).

    >>> h = Hypergraph(3, [{0, 1, 2}])
    >>> red = AttributeSuppressionReduction(h, k=3)
    >>> red.threshold
    0
    """

    def __init__(self, graph: Hypergraph, k: int, b0=0, b1=1):
        if k <= 2:
            raise ValueError("Theorem 3.2 applies for k > 2")
        if b0 == b1:
            raise ValueError("the two alphabet symbols must differ")
        if not graph.is_uniform(k):
            raise ValueError(f"hypergraph must be {k}-uniform")
        if not graph.is_simple():
            raise ValueError("hypergraph must be simple")
        if graph.n_vertices % k:
            raise ValueError(
                "a perfect matching needs k | n; "
                f"got n={graph.n_vertices}, k={k}"
            )
        self.graph = graph
        self.k = k
        self.b0, self.b1 = b0, b1
        n, m = graph.n_vertices, graph.n_edges
        rows = []
        for i in range(n):
            incident = set(graph.incident_edges(i))
            rows.append(
                tuple(b1 if j in incident else b0 for j in range(m))
            )
        self.table = Table(rows, attributes=[f"e{j}" for j in range(m)])
        #: number of whole attributes: m - n/k
        self.threshold = m - n // k

    # ------------------------------------------------------------------

    def suppressor_from_matching(self, matching: Iterable[int]) -> Suppressor:
        """Forward certificate: suppress every attribute *not* in the
        matching; exactly ``threshold`` columns are starred."""
        matching = set(matching)
        if not is_perfect_matching(self.graph, sorted(matching)):
            raise ValueError("not a perfect matching of the source hypergraph")
        suppressed = [j for j in range(self.graph.n_edges) if j not in matching]
        return Suppressor.suppress_attributes(self.table, suppressed)

    def matching_from_kept_attributes(self, kept: Iterable[int]) -> list[int]:
        """Backward certificate: if ``n/k`` kept attributes k-anonymize
        the projection, they are pairwise disjoint edges covering U —
        a perfect matching."""
        matching = sorted(set(kept))
        if len(matching) != self.graph.n_vertices // self.k:
            raise ValueError(
                f"expected {self.graph.n_vertices // self.k} kept "
                f"attributes, got {len(matching)}"
            )
        if not is_perfect_matching(self.graph, matching):
            raise ValueError("kept attributes do not form a perfect matching")
        return matching

    def matching_from_anonymized(self, anonymized: Table) -> list[int]:
        """Extract the matching from an attribute-suppressed table that
        meets the threshold."""
        suppressor = Suppressor.from_tables(self.table, anonymized)
        if not suppressor.is_attribute_suppressor():
            raise ValueError("not an attribute suppression")
        suppressed = suppressor.suppressed_attributes()
        kept = [j for j in range(self.graph.n_edges) if j not in suppressed]
        return self.matching_from_kept_attributes(kept)
