"""File IO: CSV round-trips for relations (``*`` marks suppression)."""

from __future__ import annotations

from pathlib import Path

from repro.core.table import Table


def read_csv(path: str | Path, header: bool = True, star_token: str = "*") -> Table:
    """Load a table from a CSV file.

    Cells equal to *star_token* become suppressed; all other values are
    strings.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        return Table.from_csv(handle, header=header, star_token=star_token)


def write_csv(
    table: Table,
    path: str | Path,
    header: bool = True,
    star_token: str = "*",
) -> None:
    """Write a table to a CSV file, rendering suppressed cells as
    *star_token*."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(table.to_csv(header=header, star_token=star_token))
