"""File IO: CSV round-trips for relations (``*`` marks suppression),
plus the JSON / JSON-lines primitives the run-artifact store builds on
(:mod:`repro.artifacts`)."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.core.table import Table


def read_csv(path: str | Path, header: bool = True, star_token: str = "*") -> Table:
    """Load a table from a CSV file.

    Cells equal to *star_token* become suppressed; all other values are
    strings.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        return Table.from_csv(handle, header=header, star_token=star_token)


def write_csv(
    table: Table,
    path: str | Path,
    header: bool = True,
    star_token: str = "*",
) -> None:
    """Write a table to a CSV file, rendering suppressed cells as
    *star_token*."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(table.to_csv(header=header, star_token=star_token))


# ----------------------------------------------------------------------
# JSON / JSON-lines primitives (run artifacts)
# ----------------------------------------------------------------------


def read_json(path: str | Path) -> Any:
    """Load one JSON document."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_json(path: str | Path, payload: Any, *, atomic: bool = False) -> None:
    """Write one JSON document (sorted keys, trailing newline).

    ``atomic=True`` writes to a temporary sibling file and
    ``os.replace``-s it into place, so a concurrent reader (or a reader
    after a crash mid-write) observes either the previous complete
    document or the new complete document — never a torn one.  The
    solution cache's disk tier depends on this.
    """
    if not atomic:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        return
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent,
        prefix=path.name + ".", suffix=".tmp", delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def append_jsonl(path: str | Path, record: Any) -> None:
    """Append one record to a JSON-lines file and flush it to disk.

    Each record is a single line, so a crash mid-sweep loses at most the
    trial being written, never earlier ones.
    """
    line = json.dumps(record, sort_keys=True)
    if "\n" in line:  # pragma: no cover - json never emits raw newlines
        raise ValueError("JSONL records must serialize to a single line")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()


def read_jsonl(path: str | Path) -> Iterator[Any]:
    """Yield records from a JSON-lines file, skipping blank lines.

    A truncated final line (crash mid-append) is tolerated and skipped
    with the records before it intact.
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # a torn final write; everything before it stands
                continue
