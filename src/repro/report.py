"""The release dossier: one document a publisher can file.

Composes the repository's analysis tools — validation, anonymity
metrics, prosecutor risk, optional l-diversity/t-closeness and query
utility — into a single plain-text dossier for a (original, released)
pair.  Used by ``kanon dossier`` and handy in notebooks.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.analysis import query_error_experiment
from repro.core.metrics import metric_report
from repro.core.table import Table
from repro.privacy import (
    closeness_level,
    diversity_level,
    risk_report,
)
from repro.validate import validate_release


def release_dossier(
    original: Table,
    released: Table,
    k: int,
    sensitive: Sequence[Hashable] | None = None,
    n_queries: int = 40,
    seed: int = 0,
) -> str:
    """Build the dossier text.

    :param sensitive: optional per-row sensitive values (not part of the
        released attributes) — enables the attribute-disclosure section.
    :param n_queries: workload size for the utility section (0 skips it).
    :returns: a multi-section plain-text report; the first line states
        the verdict.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    validation = validate_release(original, released, k)
    lines: list[str] = []
    verdict = "APPROVED" if validation.ok else "REJECTED"
    lines.append(f"RELEASE DOSSIER — verdict: {verdict} (k={k})")
    lines.append("=" * 60)

    lines.append("")
    lines.append("[1] validation")
    lines.append(validation.summary())

    lines.append("")
    lines.append("[2] anonymity & utility metrics")
    for key, value in metric_report(released, k).items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.4f}")
        else:
            lines.append(f"  {key}: {value}")

    lines.append("")
    lines.append("[3] re-identification risk (prosecutor model)")
    risk = risk_report(released)
    lines.append(f"  max risk: {risk.max_risk:.4f} (guarantee 1/k = {1 / k:.4f})")
    lines.append(f"  mean risk: {risk.mean_risk:.4f}")
    lines.append(f"  records at max risk: {risk.records_at_max}")

    if sensitive is not None:
        lines.append("")
        lines.append("[4] attribute disclosure (sensitive column)")
        if len(sensitive) != released.n_rows:
            raise ValueError("one sensitive value per row required")
        if released.n_rows:
            lines.append(
                f"  distinct l-diversity: l = "
                f"{diversity_level(released, sensitive)}"
            )
            lines.append(
                f"  t-closeness (total variation): t = "
                f"{closeness_level(released, sensitive):.4f}"
            )
        else:
            lines.append("  (empty release)")

    if n_queries > 0 and validation.is_suppression and original.n_rows:
        lines.append("")
        lines.append(f"[{'5' if sensitive is not None else '4'}] "
                     f"analytic utility ({n_queries} random count queries)")
        utility = query_error_experiment(
            original, released, n_queries=n_queries, seed=seed,
            arity=min(2, max(1, original.degree)),
        )
        lines.append(f"  all intervals sound: {utility.all_sound}")
        lines.append(f"  mean interval width: {utility.mean_width:.1f} rows "
                     f"({utility.mean_relative_width:.1%} of n)")

    lines.append("")
    lines.append("=" * 60)
    return "\n".join(lines)
